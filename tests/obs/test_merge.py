"""Tests for the sweep-trace merger: multi-document Chrome-trace
merging (:func:`repro.obs.merge_chrome_traces`) and the runtime-shard
to Perfetto conversion (:mod:`repro.obs.sweep_trace`)."""

import json

from repro.obs import merge_chrome_traces
from repro.obs.sweep_trace import (
    load_runtime_shards,
    merge_obs_dir,
    runtime_chrome_doc,
    write_sweep_trace,
)


def doc(events, schema="test"):
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": schema},
    }


def ev(name, pid=0, ts=0.0, ph="X", **extra):
    return {"name": name, "ph": ph, "pid": pid, "tid": 0, "ts": ts, **extra}


class TestMergeChromeTraces:
    def test_pid_collisions_are_remapped(self):
        # Two per-cell traces both use pid 0; the merged trace must keep
        # them on distinct tracks.
        a = doc([ev("a1", pid=0, ts=1.0), ev("a2", pid=0, ts=2.0)])
        b = doc([ev("b1", pid=0, ts=1.5)])
        merged = merge_chrome_traces([a, b])
        by_name = {e["name"]: e["pid"] for e in merged["traceEvents"]}
        assert by_name["a1"] == by_name["a2"]
        assert by_name["a1"] != by_name["b1"]

    def test_remapping_is_injective_within_a_doc(self):
        # A doc whose own pids straddle an already-taken id must not
        # fold two of its tracks into one.
        a = doc([ev("a", pid=1, ts=0.0)])
        b = doc([ev("b0", pid=0, ts=0.0), ev("b1", pid=1, ts=0.0),
                 ev("b2", pid=2, ts=0.0)])
        merged = merge_chrome_traces([a, b])
        b_pids = [e["pid"] for e in merged["traceEvents"]
                  if e["name"].startswith("b")]
        assert len(set(b_pids)) == 3

    def test_empty_docs_are_tolerated(self):
        merged = merge_chrome_traces([doc([]), doc([ev("x")]), {}])
        assert [e["name"] for e in merged["traceEvents"]] == ["x"]
        # ...but still accounted for in the provenance list.
        assert len(merged["otherData"]["sources"]) == 3

    def test_out_of_order_timestamps_are_sorted(self):
        a = doc([ev("late", ts=5.0), ev("early", ts=1.0)])
        b = doc([ev("mid", ts=3.0),
                 ev("meta", ph="M", ts=0.0, args={"name": "w"})])
        merged = merge_chrome_traces([a, b])
        names = [e["name"] for e in merged["traceEvents"]]
        # Metadata first, then strictly by ts.
        assert names == ["meta", "early", "mid", "late"]
        ts = [e["ts"] for e in merged["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_result_is_valid_trace_json(self):
        merged = merge_chrome_traces([doc([ev("x")])])
        text = json.dumps(merged)
        back = json.loads(text)
        assert back["displayTimeUnit"] == "ms"
        assert back["otherData"]["schema"] == "repro-sweep-trace/1"
        assert all("ph" in e and "pid" in e for e in back["traceEvents"])


def shard(role, pid, wall0, events):
    return {"role": role, "pid": pid, "wall0": wall0, "events": events}


class TestRuntimeChromeDoc:
    def test_attempt_span_from_start_finish_pair(self):
        doc = runtime_chrome_doc([
            shard("worker", 7, 100.0, [
                {"kind": "attempt_start", "t": 0.5, "workload": "g",
                 "procs": 2, "attempt": 1},
                {"kind": "attempt_finish", "t": 1.5, "workload": "g",
                 "procs": 2, "attempt": 1, "status": "ok", "dur": 1.0},
            ]),
        ])
        (span,) = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert span["name"] == "g@2 attempt 1"
        assert span["pid"] == 7
        assert span["ts"] == 0.5 * 1e6
        assert span["dur"] == 1.0 * 1e6
        assert span["args"]["status"] == "ok"

    def test_unfinished_attempt_becomes_instant(self):
        # A SIGKILLed worker leaves attempt_start with no finish.
        doc = runtime_chrome_doc([
            shard("worker", 9, 100.0, [
                {"kind": "attempt_start", "t": 0.1, "workload": "g",
                 "procs": 4, "attempt": 2},
            ]),
        ])
        (inst,) = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert inst["name"] == "g@4 attempt 2 (no finish)"
        assert inst["pid"] == 9

    def test_wall0_aligns_shards_cross_process(self):
        # Supervisor opened 2s before the worker: a worker event at
        # t=0 must land 2s into the merged timeline.
        doc = runtime_chrome_doc([
            shard("supervisor", 1, 100.0, [
                {"kind": "dispatch", "t": 0.0, "workload": "g",
                 "procs": 2, "attempt": 1},
            ]),
            shard("worker", 2, 102.0, [
                {"kind": "attempt_start", "t": 0.0, "workload": "g",
                 "procs": 2, "attempt": 1},
                {"kind": "attempt_finish", "t": 1.0, "workload": "g",
                 "procs": 2, "attempt": 1, "dur": 1.0},
            ]),
        ])
        span = next(e for e in doc["traceEvents"] if e.get("ph") == "X")
        disp = next(e for e in doc["traceEvents"]
                    if e["name"].startswith("dispatch"))
        assert disp["ts"] == 0.0
        assert span["ts"] == 2.0 * 1e6

    def test_retry_dispatches_are_linked_by_flow(self):
        doc = runtime_chrome_doc([
            shard("supervisor", 1, 100.0, [
                {"kind": "dispatch", "t": 0.0, "workload": "g",
                 "procs": 2, "attempt": 1},
                {"kind": "retry", "t": 1.0, "workload": "g",
                 "procs": 2, "attempt": 1, "status": "error"},
                {"kind": "dispatch", "t": 2.0, "workload": "g",
                 "procs": 2, "attempt": 2},
            ]),
        ])
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "retry"
                 and e.get("ph") in ("s", "f")]
        assert {e["ph"] for e in flows} == {"s", "f"}
        (s,) = [e for e in flows if e["ph"] == "s"]
        (f,) = [e for e in flows if e["ph"] == "f"]
        assert s["id"] == f["id"]
        assert s["ts"] == 0.0 and f["ts"] == 2.0 * 1e6

    def test_per_pid_tracks_are_named(self):
        doc = runtime_chrome_doc([
            shard("supervisor", 1, 100.0, []),
            shard("worker", 2, 100.0, []),
        ])
        names = {e["pid"]: e["args"]["name"]
                 for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names == {1: "supervisor 1", 2: "worker 2"}

    def test_empty_shards(self):
        doc = runtime_chrome_doc([])
        assert doc["traceEvents"] == []
        assert doc["otherData"]["shards"] == 0


class TestLoadRuntimeShards:
    def write(self, tmp_path, name, lines):
        (tmp_path / name).write_text("".join(
            (json.dumps(rec) if isinstance(rec, dict) else rec) + "\n"
            for rec in lines
        ))

    def test_truncated_and_preheader_lines_are_dropped(self, tmp_path):
        self.write(tmp_path, "runtime-worker-5.jsonl", [
            {"kind": "attempt_start", "t": 0.0},  # pre-header: no anchor
            {"kind": "header", "schema": "repro-runtime-trace/1",
             "role": "worker", "pid": 5, "wall0": 10.0},
            {"kind": "dispatch", "t": 0.1},
            '{"kind": "attempt_fini',  # SIGKILL mid-write
        ])
        (block,) = load_runtime_shards(tmp_path)
        assert block["pid"] == 5
        assert [e["kind"] for e in block["events"]] == ["dispatch"]

    def test_reopened_shard_yields_two_blocks(self, tmp_path):
        self.write(tmp_path, "runtime-worker-5.jsonl", [
            {"kind": "header", "role": "worker", "pid": 5, "wall0": 10.0},
            {"kind": "a", "t": 0.0},
            {"kind": "header", "role": "worker", "pid": 5, "wall0": 20.0},
            {"kind": "b", "t": 0.0},
        ])
        blocks = load_runtime_shards(tmp_path)
        assert [b["wall0"] for b in blocks] == [10.0, 20.0]
        assert [b["events"][0]["kind"] for b in blocks] == ["a", "b"]

    def test_only_runtime_shards_are_read(self, tmp_path):
        self.write(tmp_path, "notes.jsonl", [{"kind": "header"}])
        assert load_runtime_shards(tmp_path) == []


class TestMergeObsDir:
    def test_folds_shards_and_cell_traces(self, tmp_path):
        (tmp_path / "runtime-supervisor-1.jsonl").write_text(
            json.dumps({"kind": "header", "role": "supervisor", "pid": 1,
                        "wall0": 100.0}) + "\n"
            + json.dumps({"kind": "dispatch", "t": 0.0, "workload": "g",
                          "procs": 2, "attempt": 1}) + "\n"
        )
        (tmp_path / "cell.trace.json").write_text(json.dumps(
            doc([ev("task A", pid=0, ts=1.0)], schema="repro-trace/1")
        ))
        merged = merge_obs_dir(tmp_path)
        names = [e["name"] for e in merged["traceEvents"]]
        assert any(n.startswith("dispatch") for n in names)
        assert "task A" in names
        # Two sources: the runtime doc and the cell trace.
        assert len(merged["otherData"]["sources"]) == 2

    def test_corrupt_cell_trace_is_skipped(self, tmp_path):
        (tmp_path / "bad.trace.json").write_text("{not json")
        merged = merge_obs_dir(tmp_path)
        assert merged["traceEvents"] == []

    def test_write_sweep_trace_roundtrip(self, tmp_path):
        (tmp_path / "runtime-supervisor-1.jsonl").write_text(
            json.dumps({"kind": "header", "role": "supervisor", "pid": 1,
                        "wall0": 100.0}) + "\n"
            + json.dumps({"kind": "sweep_end", "t": 1.0,
                          "counts": {"ok": 2}, "elapsed": 1.0}) + "\n"
        )
        out = write_sweep_trace(tmp_path)
        assert out.endswith("sweep_trace.json")
        back = json.loads(open(out).read())
        assert back["otherData"]["schema"] == "repro-sweep-trace/1"
        assert any(e["name"] == "sweep_end" for e in back["traceEvents"])
