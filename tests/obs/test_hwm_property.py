"""Property: the observed memory high-water mark of a managed run equals
the static prediction from the MAP plan.

:meth:`repro.core.maps.MapPlan.predicted_peaks` replays each MAP's
frees-then-allocs on top of the permanent bytes; since the simulator
performs exactly those operations (and allocations only grow between
MAPs), the :class:`~repro.obs.instruments.MemoryTimeline` high-water
marks must match per processor.  At ``capacity == MIN_MEM`` the maximum
over processors must equal the liveness bound itself (Definition 5/6).
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
)
from repro.graph import generators as gen
from repro.graph.paper_example import schedule_b, schedule_c
from repro.machine import UNIT_MACHINE, simulate

params = st.tuples(
    st.integers(10, 40),
    st.integers(3, 8),
    st.integers(0, 10_000),
    st.integers(2, 5),
)
ORDERINGS = (rcp_order, mpo_order, dts_order)


def make(ps):
    n, m, seed, p = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    return g, pl, owner_compute_assignment(g, pl)


def check_hwm(s, capacity, profile=None):
    res = simulate(
        s, spec=UNIT_MACHINE, capacity=capacity, profile=profile, metrics=True
    )
    predicted = res.plan.predicted_peaks()
    observed = res.telemetry.memory.high_waters()
    assert observed == predicted, (observed, predicted)
    assert res.metrics["summary"]["hwm_matches_prediction"] is True
    assert max(observed, default=0) == res.peak_memory
    assert max(observed, default=0) <= capacity
    return res


def test_paper_example_hwm_at_min_mem():
    for s in (schedule_b(), schedule_c()):
        prof = analyze_memory(s)
        res = check_hwm(s, prof.min_mem, profile=prof)
        # the binding processor hits the liveness bound exactly
        assert max(res.telemetry.memory.high_waters()) == prof.min_mem


def test_paper_example_hwm_above_min_mem():
    s = schedule_c()
    prof = analyze_memory(s)
    for cap in range(prof.min_mem, prof.tot + 1):
        check_hwm(s, cap, profile=prof)


@settings(max_examples=30, deadline=None)
@given(params, st.sampled_from(ORDERINGS), st.floats(0.0, 1.0))
def test_hwm_matches_static_prediction(ps, order_fn, frac):
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    prof = analyze_memory(s)
    cap = int(prof.min_mem + frac * (prof.tot - prof.min_mem))
    check_hwm(s, cap, profile=prof)


@settings(max_examples=20, deadline=None)
@given(params, st.sampled_from(ORDERINGS))
def test_hwm_is_min_mem_at_the_min_mem_capacity(ps, order_fn):
    """At the tightest feasible capacity the binding processor's peak is
    the MEM_REQ peak itself: MIN_MEM (Definition 6)."""
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    prof = analyze_memory(s)
    res = check_hwm(s, prof.min_mem, profile=prof)
    assert max(res.telemetry.memory.high_waters()) == prof.min_mem
