"""Built-in instruments: residency identity, counters, queues, memory.

The load-bearing invariant is the residency identity — for every
processor the per-state residency buckets (EXE + the four overhead kinds
+ idle + done) partition ``[0, parallel_time]`` exactly, so their sum
equals the parallel time to floating-point roundoff.
"""

import pytest

from repro.core import analyze_memory, cyclic_placement, mpo_order, owner_compute_assignment
from repro.graph import generators as gen
from repro.graph.paper_example import paper_example_graph, schedule_b, schedule_c
from repro.machine import CRAY_T3D, UNIT_MACHINE, simulate
from repro.obs import (
    HOOKS,
    MAP_OVERHEAD_KINDS,
    NULL_INSTRUMENT,
    OVERHEAD_KINDS,
    RESIDENCY_KEYS,
    Counters,
    Instrument,
    MultiInstrument,
)


def run_paper(spec=UNIT_MACHINE, capacity=8, **kw):
    return simulate(schedule_c(), spec=spec, capacity=capacity, metrics=True, **kw)


def run_random(seed, spec=CRAY_T3D, frac=0.5):
    g = gen.random_trace(30, 6, seed=seed)
    pl = cyclic_placement(g, 3)
    s = mpo_order(g, pl, owner_compute_assignment(g, pl))
    prof = analyze_memory(s)
    cap = int(prof.min_mem + frac * (prof.tot - prof.min_mem))
    return simulate(s, spec=spec, capacity=cap, profile=prof, metrics=True)


# -- residency ----------------------------------------------------------


@pytest.mark.parametrize("spec", [UNIT_MACHINE, CRAY_T3D])
def test_residency_partitions_parallel_time(spec):
    res = run_paper(spec=spec)
    suite = res.telemetry
    for q in range(len(res.stats)):
        r = suite.residency.residency(q)
        assert set(r) == set(RESIDENCY_KEYS)
        assert sum(r.values()) == pytest.approx(res.parallel_time, abs=1e-9)
        assert all(v >= -1e-12 for v in r.values()), r


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_residency_identity_random_graphs(seed):
    res = run_random(seed)
    for q in range(len(res.stats)):
        r = res.telemetry.residency.residency(q)
        assert sum(r.values()) == pytest.approx(res.parallel_time, abs=1e-9)


def test_residency_matches_processor_stats():
    res = run_paper(spec=CRAY_T3D)
    for q, st in enumerate(res.stats):
        r = res.telemetry.residency.residency(q)
        assert r["exe"] == pytest.approx(st.busy_time, abs=1e-12)
        overhead = sum(r[k] for k in OVERHEAD_KINDS)
        assert overhead == pytest.approx(st.overhead_time, abs=1e-9)


def test_map_overhead_frac_is_map_kinds_only():
    res = run_random(3)
    suite = res.telemetry
    pt = res.parallel_time
    for q in range(len(res.stats)):
        r = suite.residency.residency(q)
        want = sum(r[k] for k in MAP_OVERHEAD_KINDS) / pt
        assert suite.residency.map_overhead_frac(q) == pytest.approx(want)
    total = sum(
        suite.residency.map_overhead_frac(q) for q in range(len(res.stats))
    ) / len(res.stats)
    assert suite.residency.map_overhead_frac() == pytest.approx(total)


def test_fractions_sum_to_one():
    res = run_paper()
    for q in range(len(res.stats)):
        f = res.telemetry.residency.fractions(q)
        assert sum(f.values()) == pytest.approx(1.0, abs=1e-9)


# -- memory -------------------------------------------------------------


def test_memory_high_water_equals_sim_peak():
    res = run_paper()
    hwm = res.telemetry.memory.high_waters()
    assert max(hwm) == res.peak_memory
    for q, st in enumerate(res.stats):
        assert hwm[q] == st.peak_memory


def test_memory_samples_monotone_time():
    res = run_random(11)
    for samples in res.telemetry.memory.samples:
        ts = [t for t, _ in samples]
        assert ts == sorted(ts)


# -- counters & queues --------------------------------------------------


def test_counters_against_plan_and_trace():
    res = run_paper()
    c = res.telemetry.counters.counts
    assert c["tasks"] == paper_example_graph().num_tasks
    assert c["maps"] == sum(res.plan.maps_per_proc)
    assert c["allocs"] >= c["frees"]
    assert c["puts"] == c["data_arrivals"]
    assert c["puts_drained"] <= c["puts_suspended"]
    assert c["packages_sent"] == res.plan.total_packages


def test_queue_depth_tracks_suspensions():
    res = run_paper()
    q = res.telemetry.queues
    assert q.max_suspended == max(q.max_suspq)
    assert sum(d * n for d, n in q.suspq_hist.items()) >= q.max_suspended
    total_suspensions = sum(q.suspq_hist.values())
    assert total_suspensions == res.telemetry.counters.counts["puts_suspended"]


# -- instrument plumbing ------------------------------------------------


def test_null_instrument_is_disabled():
    assert NULL_INSTRUMENT.enabled is False
    # all hooks exist on the base class (null-object contract)
    for name in HOOKS:
        assert callable(getattr(NULL_INSTRUMENT, name))
    # no-op hooks accept their documented arguments
    NULL_INSTRUMENT.on_run_begin(0.0, 2, 8, True)
    NULL_INSTRUMENT.on_exe(0.0, 1.0, 0, "T[1]")
    NULL_INSTRUMENT.on_run_end(19.0)


def test_multi_instrument_drops_disabled_children():
    class Probe(Instrument):
        def __init__(self):
            self.calls = []

        def on_run_begin(self, t, nprocs, capacity, memory_managed):
            self.calls.append(("begin", nprocs))

        def on_run_end(self, t):
            self.calls.append(("end", t))

    probe = Probe()
    multi = MultiInstrument([NULL_INSTRUMENT, probe])
    assert multi.children == (probe,)
    assert multi.enabled
    multi.on_run_begin(0.0, 2, 8, True)
    multi.on_run_end(19.0)
    assert probe.calls == [("begin", 2), ("end", 19.0)]
    empty = MultiInstrument([NULL_INSTRUMENT])
    assert not empty.enabled


def test_user_instrument_receives_events():
    counts = Counters()
    res = simulate(
        schedule_c(), spec=UNIT_MACHINE, capacity=8, instrument=counts
    )
    # user instrument alone (metrics=False): no metrics doc, but the
    # instrument saw the run
    assert res.metrics is None
    assert counts.counts["tasks"] == paper_example_graph().num_tasks
    assert counts.counts["maps"] > 0


def test_schedule_b_and_c_differ_in_residency():
    res_b = simulate(schedule_b(), spec=UNIT_MACHINE, capacity=9, metrics=True)
    res_c = run_paper()
    # both satisfy the identity; the orderings give different idle time
    for res in (res_b, res_c):
        for q in range(len(res.stats)):
            r = res.telemetry.residency.residency(q)
            assert sum(r.values()) == pytest.approx(res.parallel_time, abs=1e-9)
