"""Unit tests for the runtime tracer and the progress/summary helpers
(:mod:`repro.obs.runtime`)."""

import io
import json
import os
from types import SimpleNamespace

from repro.obs.runtime import (
    SCHEMA,
    MultiSink,
    RuntimeTracer,
    SweepProgress,
    format_summary,
    status_counts,
)


def read_shard(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestRuntimeTracer:
    def test_header_then_events(self, tmp_path):
        with RuntimeTracer(tmp_path, role="supervisor") as tr:
            tr.emit("dispatch", group=("chol15", 4), attempt=1, timeout=30.0)
            tr.emit("sweep_end", counts={"ok": 3}, elapsed=1.25)
        records = read_shard(tr.path)
        header, dispatch, end = records
        assert header["kind"] == "header"
        assert header["schema"] == SCHEMA
        assert header["role"] == "supervisor"
        assert header["pid"] == os.getpid()
        assert header["wall0"] > 0
        assert dispatch["kind"] == "dispatch"
        assert dispatch["workload"] == "chol15"
        assert dispatch["procs"] == 4
        assert dispatch["attempt"] == 1
        assert dispatch["timeout"] == 30.0
        assert dispatch["t"] >= 0.0
        assert end["counts"] == {"ok": 3}

    def test_shard_name_carries_role_and_pid(self, tmp_path):
        tr = RuntimeTracer(tmp_path, role="worker")
        tr.close()
        assert tr.path.name == f"runtime-worker-{os.getpid()}.jsonl"

    def test_reopen_appends_fresh_header(self, tmp_path):
        # A worker process surviving across sweeps re-opens its shard;
        # the merger must see a new anchor for the new events.
        with RuntimeTracer(tmp_path, role="worker") as tr:
            tr.emit("attempt_start", group=("g", 2), attempt=1)
        with RuntimeTracer(tmp_path, role="worker") as tr2:
            tr2.emit("attempt_start", group=("g", 2), attempt=2)
        assert tr2.path == tr.path
        kinds = [r["kind"] for r in read_shard(tr.path)]
        assert kinds == ["header", "attempt_start", "header", "attempt_start"]

    def test_timestamps_are_monotonic_offsets(self, tmp_path):
        with RuntimeTracer(tmp_path) as tr:
            tr.emit("a")
            tr.emit("b")
        _, a, b = read_shard(tr.path)
        assert 0.0 <= a["t"] <= b["t"]


class _Recorder:
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, kind, group=None, attempt=None, **fields):
        self.events.append((kind, group, attempt, fields))

    def close(self):
        self.closed = True


class TestMultiSink:
    def test_fans_out_emit_and_close(self):
        a, b = _Recorder(), _Recorder()
        sink = MultiSink([a, b])
        sink.emit("dispatch", group=("g", 2), attempt=1, timeout=5.0)
        sink.close()
        assert a.events == b.events == [
            ("dispatch", ("g", 2), 1, {"timeout": 5.0})
        ]
        assert a.closed and b.closed

    def test_sinks_without_close_are_tolerated(self):
        class Bare:
            def emit(self, kind, group=None, attempt=None, **fields):
                pass

        MultiSink([Bare()]).close()  # must not raise


class TestSummaryHelpers:
    def test_status_counts_maps_none_to_ok(self):
        records = [
            SimpleNamespace(status=None),
            SimpleNamespace(status=None),
            SimpleNamespace(status="timeout"),
            SimpleNamespace(status="crashed"),
        ]
        assert status_counts(records) == {"ok": 2, "timeout": 1, "crashed": 1}

    def test_format_summary_orders_ok_first(self):
        line = format_summary({"timeout": 1, "ok": 3, "crashed": 2}, 12.34)
        assert line == "sweep: 6 cells (3 ok, 2 crashed, 1 timeout) in 12.3s"

    def test_all_healthy(self):
        assert format_summary({"ok": 4}, 0.5) == "sweep: 4 cells (4 ok) in 0.5s"


class TestSweepProgress:
    def drive(self, events, total=2):
        out = io.StringIO()
        prog = SweepProgress(total=total, stream=out)
        for kind, group, fields in events:
            prog.emit(kind, group=group, **fields)
        prog.close()
        return out.getvalue()

    def test_lifecycle_to_done(self):
        text = self.drive([
            ("dispatch", ("a", 2), {}),
            ("dispatch", ("b", 4), {}),
            ("group_done", ("a", 2), {}),
            ("group_done", ("b", 4), {}),
            ("sweep_end", None, {"counts": {"ok": 8}, "elapsed": 2.0}),
        ])
        # The last redraw shows both groups done, then the final summary
        # (the same format_summary text the CLI prints without a ticker).
        assert "2/2 groups done" in text
        assert text.rstrip().endswith("sweep: 8 cells (8 ok) in 2.0s")

    def test_retry_and_failure_states(self):
        text = self.drive([
            ("dispatch", ("a", 2), {}),
            ("retry", ("a", 2), {"delay": 0.1}),
            ("dispatch", ("a", 2), {}),
            ("cell_failure", ("a", 2), {"status": "timeout"}),
        ], total=1)
        assert "1 retrying" in text
        assert "1 failed" in text

    def test_resume_hit_counts_as_done(self):
        text = self.drive([
            ("resume_hit", ("a", 2), {"records": 4}),
        ], total=1)
        assert "1/1 groups done" in text

    def test_crash_quarantine_marks_retrying(self):
        text = self.drive([
            ("dispatch", ("a", 2), {}),
            ("crash_quarantine", ("a", 2), {}),
        ], total=1)
        assert "1 retrying" in text

    def test_unknown_kinds_do_not_redraw(self):
        out = io.StringIO()
        prog = SweepProgress(total=1, stream=out)
        prog.emit("engine_counters", counters={"plan_hits": 3})
        prog.emit("checkpoint_shard", group=("a", 2), records=4)
        assert out.getvalue() == ""
        prog.close()
