"""Tests for the Newton's-method application (Bratu problem)."""

import numpy as np
import pytest

from repro.apps import BratuProblem, newton_solve
from repro.core import dts_order, mpo_order, rcp_order


@pytest.fixture(scope="module")
def bratu():
    return BratuProblem(k=7, lam=2.0)


@pytest.fixture(scope="module")
def lu(bratu):
    return bratu.build_lu(block_size=6)


class TestBratu:
    def test_dimensions(self, bratu):
        assert bratu.n == 49
        assert bratu.a.shape == (49, 49)

    def test_jacobian_pattern_invariant(self, bratu):
        rng = np.random.default_rng(0)
        j1 = bratu.jacobian(np.zeros(bratu.n))
        j2 = bratu.jacobian(rng.normal(size=bratu.n))
        assert (j1 != 0).toarray().tolist() == (j2 != 0).toarray().tolist()

    def test_f_and_jacobian_consistent(self, bratu):
        """Finite-difference check of the analytic Jacobian."""
        rng = np.random.default_rng(1)
        u = rng.normal(scale=0.1, size=bratu.n)
        j = bratu.jacobian(u).toarray()
        eps = 1e-7
        for col in (0, bratu.n // 2, bratu.n - 1):
            e = np.zeros(bratu.n)
            e[col] = eps
            fd = (bratu.f(u + e) - bratu.f(u - e)) / (2 * eps)
            assert np.allclose(fd, j[:, col], atol=1e-5)


class TestNewton:
    def test_converges_quadratically(self, bratu, lu):
        res = newton_solve(lu, bratu.f, bratu.jacobian, np.zeros(bratu.n))
        assert res.converged
        assert res.iterations <= 6
        # quadratic tail: each residual ~ the square of the previous
        r = res.residuals
        assert r[-1] < 1e-10
        if len(r) >= 3 and r[-3] < 1e-1:
            assert r[-2] < r[-3] ** 1.5

    def test_solution_satisfies_equation(self, bratu, lu):
        res = newton_solve(lu, bratu.f, bratu.jacobian, np.zeros(bratu.n))
        assert np.linalg.norm(bratu.f(res.x)) < 1e-9

    @pytest.mark.parametrize("order_fn", [rcp_order, mpo_order, dts_order])
    def test_any_schedule_gives_same_solution(self, bratu, lu, order_fn):
        pl = lu.placement(3)
        s = order_fn(lu.graph, pl, lu.assignment(pl))
        serial = newton_solve(lu, bratu.f, bratu.jacobian, np.zeros(bratu.n))
        sched = newton_solve(lu, bratu.f, bratu.jacobian, np.zeros(bratu.n), schedule=s)
        assert sched.converged
        assert np.allclose(serial.x, sched.x)

    def test_non_convergence_reported(self, bratu, lu):
        res = newton_solve(
            lu, bratu.f, bratu.jacobian, np.zeros(bratu.n), max_iter=1, tol=1e-14
        )
        assert not res.converged

    def test_store_reuse_matches_fresh_build(self, bratu):
        """Re-populating the panel store equals rebuilding the problem
        from the new matrix (structure reuse is value-exact)."""
        from repro.rapid.executor import execute_serial

        rng = np.random.default_rng(2)
        u = rng.normal(scale=0.1, size=bratu.n)
        j = bratu.jacobian(u)
        lu1 = bratu.build_lu(block_size=6)
        store1 = lu1.initial_store(lu1.permute(j))
        execute_serial(lu1.graph, store1)
        p1, l1, u1 = lu1.assemble(store1)
        jp = lu1.permute(j)
        assert np.max(np.abs(l1 @ u1 - p1 @ jp.toarray())) < 1e-12

    def test_initial_store_shape_check(self, lu):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            lu.initial_store(sp.eye(3, format="csr"))
