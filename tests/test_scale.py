"""Scale stress tests (marked slow): tens of thousands of tasks through
the full pipeline, asserting the invariants still hold and the
implementation stays within sane wall-time."""

import time

import pytest

from repro.core import (
    analyze_memory,
    dts_order,
    mpo_order,
    plan_maps,
    rcp_order,
)
from repro.core.dts import dts_space_bound
from repro.machine import UNIT_MACHINE, simulate
from repro.sparse.cholesky import build_cholesky
from repro.sparse.matrices import bcsstk15_like


@pytest.mark.slow
class TestScale:
    def test_wide_synthetic(self, seeded_case):
        t0 = time.time()
        # 4000 tasks, wide
        case = seeded_case(
            seed=5, procs=16, family="layered", layers=50, width=80,
            density=0.08,
        )
        g, pl, asg = case.graph, case.placement, case.assignment
        assert g.num_tasks == 4000
        for fn in (rcp_order, mpo_order, dts_order):
            s = fn(g, pl, asg)
            prof = analyze_memory(s)
            plan_maps(s, prof.min_mem, prof)
            res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
            assert res.peak_memory <= prof.min_mem
        assert time.time() - t0 < 120

    def test_large_cholesky(self):
        t0 = time.time()
        prob = build_cholesky(
            bcsstk15_like(scale=0.3), block_size=16, with_kernels=False
        )
        g = prob.graph
        assert g.num_tasks > 10_000
        pl = prob.placement(32)
        asg = prob.assignment(pl)
        s = mpo_order(g, pl, asg)
        prof = analyze_memory(s)
        assert analyze_memory(dts_order(g, pl, asg)).min_mem <= dts_space_bound(
            g, pl, asg
        )
        res = simulate(
            s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof
        )
        assert res.peak_memory <= prof.min_mem
        assert time.time() - t0 < 180
