"""Tests for supernodal / variable partitioning."""

import numpy as np
import pytest

from repro.core import analyze_memory, dts_order
from repro.core.dts import dts_space_bound
from repro.rapid.executor import execute_serial
from repro.sparse.cholesky import build_cholesky
from repro.sparse.lu import build_lu
from repro.sparse.matrices import (
    convection_diffusion_2d,
    grid_laplacian_2d,
    perturbed_grid_spd,
)
from repro.sparse.supernodes import (
    VariablePartition,
    supernode_partition,
    supernode_stats,
    uniform_partition,
)
from repro.sparse.symbolic import symbolic_cholesky


class TestVariablePartition:
    def test_basic(self):
        p = VariablePartition(10, (0, 3, 7, 10))
        assert p.num_blocks == 3
        assert p.bounds(1) == (3, 7)
        assert p.width(2) == 3
        assert p.max_width == 4

    def test_block_of(self):
        p = VariablePartition(10, (0, 3, 7, 10))
        assert [p.block_of(i) for i in (0, 2, 3, 6, 7, 9)] == [0, 0, 1, 1, 2, 2]
        with pytest.raises(IndexError):
            p.block_of(10)

    def test_block_of_array(self):
        p = VariablePartition(10, (0, 3, 7, 10))
        assert p.block_of_array(np.array([0, 4, 9])).tolist() == [0, 1, 2]

    def test_bad_boundaries(self):
        with pytest.raises(ValueError):
            VariablePartition(10, (0, 5))
        with pytest.raises(ValueError):
            VariablePartition(10, (1, 10))
        with pytest.raises(ValueError):
            VariablePartition(10, (0, 5, 5, 10))

    def test_uniform_partition(self):
        p = uniform_partition(10, 4)
        assert p.boundaries == (0, 4, 8, 10)
        assert p.max_width == 4
        with pytest.raises(ValueError):
            uniform_partition(10, 0)

    def test_uniform_exact_multiple(self):
        p = uniform_partition(8, 4)
        assert p.boundaries == (0, 4, 8)


class TestSupernodeDetection:
    def test_dense_pattern_one_supernode(self):
        """A fully dense lower pattern is a single supernode (capped)."""
        n = 6
        cols = [np.arange(j, n) for j in range(n)]
        p = supernode_partition(cols, max_width=n)
        assert p.num_blocks == 1 and p.max_width == n

    def test_max_width_cap(self):
        n = 6
        cols = [np.arange(j, n) for j in range(n)]
        p = supernode_partition(cols, max_width=2)
        assert p.max_width == 2 and p.num_blocks == 3

    def test_diagonal_pattern_all_singletons(self):
        cols = [np.array([j]) for j in range(5)]
        p = supernode_partition(cols)
        assert p.num_blocks == 5

    def test_grid_laplacian(self):
        cols, _ = symbolic_cholesky(grid_laplacian_2d(6))
        p = supernode_partition(cols)
        assert p.n == 36
        s = supernode_stats(p)
        assert s["max_width"] >= 1
        # partition covers all columns contiguously
        assert sum(p.width(b) for b in range(p.num_blocks)) == 36

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            supernode_partition([])


class TestSupernodalFactorizations:
    def test_cholesky_numeric(self):
        prob = build_cholesky(
            perturbed_grid_spd(8, seed=2), block_size=10, partition="supernodal"
        )
        store = prob.initial_store()
        execute_serial(prob.graph, store)
        assert prob.factor_error(store) < 1e-10

    def test_lu_numeric(self):
        prob = build_lu(
            convection_diffusion_2d(7, seed=1), block_size=10, partition="supernodal"
        )
        store = prob.initial_store()
        execute_serial(prob.graph, store)
        assert prob.factor_error(store) < 1e-10

    def test_unknown_partition(self):
        with pytest.raises(ValueError):
            build_cholesky(grid_laplacian_2d(4), partition="magic")
        with pytest.raises(ValueError):
            build_lu(grid_laplacian_2d(4), partition="magic")

    def test_corollary2_with_structural_w(self):
        """Theorem 2 under the structure-driven partition: the DTS bound
        uses the actual largest column block, Corollary 2's ``w``."""
        prob = build_lu(
            convection_diffusion_2d(7, seed=3), block_size=8, partition="supernodal"
        )
        pl = prob.placement(3)
        asg = prob.assignment(pl)
        s = dts_order(prob.graph, pl, asg)
        assert analyze_memory(s).min_mem <= dts_space_bound(prob.graph, pl, asg)
