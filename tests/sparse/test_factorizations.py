"""Integration tests: block Cholesky / LU task graphs and numerics."""

import pytest

from repro.core import (
    analyze_memory,
    dts_order,
    mpo_order,
    rcp_order,
)
from repro.core.dcg import build_dcg
from repro.core.dts import dts_space_bound
from repro.core.placement import validate_owner_compute
from repro.graph.builder import is_source_task
from repro.machine import UNIT_MACHINE, simulate
from repro.rapid.executor import execute_schedule, execute_serial
from repro.sparse.blocks import BlockPartition
from repro.sparse.cholesky import build_cholesky
from repro.sparse.lu import build_lu
from repro.sparse.matrices import (
    convection_diffusion_2d,
    goodwin_like,
    perturbed_grid_spd,
)

ORDERINGS = (rcp_order, mpo_order, dts_order)


@pytest.fixture(scope="module")
def chol():
    return build_cholesky(perturbed_grid_spd(9, seed=5), block_size=6)


@pytest.fixture(scope="module")
def lu():
    return build_lu(convection_diffusion_2d(8, seed=4), block_size=6)


class TestBlockPartition:
    def test_basic(self):
        p = BlockPartition(10, 4)
        assert p.num_blocks == 3
        assert p.bounds(2) == (8, 10)
        assert p.width(2) == 2
        assert p.block_of(9) == 2

    def test_bad_args(self):
        with pytest.raises(ValueError):
            BlockPartition(10, 0)


class TestCholeskyGraph:
    def test_task_kinds(self, chol):
        names = set(chol.graph.task_names)
        n = chol.num_block_cols
        assert f"POTRF({n-1})" in names
        assert any(t.startswith("TRSM") for t in names)
        assert any(t.startswith("GEMM") for t in names)

    def test_sources_materialised(self, chol):
        assert any(is_source_task(t) for t in chol.graph.task_names)

    def test_serial_numeric_correct(self, chol):
        store = chol.initial_store()
        execute_serial(chol.graph, store)
        assert chol.factor_error(store) < 1e-10

    @pytest.mark.parametrize("order_fn", ORDERINGS)
    @pytest.mark.parametrize("p", [2, 4])
    def test_every_schedule_preserves_numerics(self, chol, order_fn, p):
        pl = chol.placement(p)
        asg = chol.assignment(pl)
        validate_owner_compute(chol.graph, pl, asg)
        s = order_fn(chol.graph, pl, asg)
        store = chol.initial_store()
        execute_schedule(s, store)
        assert chol.factor_error(store) < 1e-10

    def test_commuting_updates_present(self, chol):
        groups = chol.graph.commute_groups()
        assert any(len(v) > 1 for v in groups.values())

    def test_memory_hierarchy(self, chol):
        """MPO and DTS use no more memory than RCP (Figure 7 trend)."""
        pl = chol.placement(4)
        asg = chol.assignment(pl)
        mm = {f.__name__: analyze_memory(f(chol.graph, pl, asg)).min_mem for f in ORDERINGS}
        assert mm["mpo_order"] <= mm["rcp_order"]
        assert mm["dts_order"] <= dts_space_bound(chol.graph, pl, asg)

    def test_block_cyclic_grid(self, chol):
        pr, pc = chol.processor_grid(6)
        assert pr * pc == 6
        pl = chol.placement(6)
        # block (i, j) owner formula
        for (i, j) in list(chol.nonzero_blocks)[:10]:
            assert pl[f"A[{i},{j}]"] == (i % pr) * pc + (j % pc)

    def test_simulated_execution(self, chol):
        pl = chol.placement(4)
        asg = chol.assignment(pl)
        s = mpo_order(chol.graph, pl, asg)
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.peak_memory <= prof.min_mem


class TestLUGraph:
    def test_task_kinds(self, lu):
        names = set(lu.graph.task_names)
        assert f"Factor({lu.num_panels-1})" in names
        assert any(t.startswith("Update") for t in names)

    def test_serial_numeric_correct(self, lu):
        store = lu.initial_store()
        execute_serial(lu.graph, store)
        assert lu.factor_error(store) < 1e-10

    def test_pivoting_actually_happens(self, lu):
        store = lu.initial_store()
        execute_serial(lu.graph, store)
        swaps = sum(
            1
            for k in range(lu.num_panels)
            for (gc, r) in store[f"P[{k}]"]["piv"]
            if r != gc
        )
        assert swaps > 0

    @pytest.mark.parametrize("order_fn", ORDERINGS)
    @pytest.mark.parametrize("p", [2, 4])
    def test_every_schedule_preserves_numerics(self, lu, order_fn, p):
        pl = lu.placement(p)
        asg = lu.assignment(pl)
        s = order_fn(lu.graph, pl, asg)
        store = lu.initial_store()
        execute_schedule(s, store)
        assert lu.factor_error(store) < 1e-10

    def test_dcg_acyclic_corollary2(self, lu):
        """Corollary 2: 1-D column-block LU graphs have acyclic DCGs."""
        assert build_dcg(lu.graph).is_acyclic()

    def test_dts_bound_is_one_panel(self, lu):
        """Corollary 2: DTS runs in perm + w space; h = largest panel."""
        pl = lu.placement(4)
        asg = lu.assignment(pl)
        bound = dts_space_bound(lu.graph, pl, asg)
        biggest_panel = max(
            lu.graph.object(f"P[{k}]").size for k in range(lu.num_panels)
        )
        perm_bytes = max(
            analyze_memory(dts_order(lu.graph, pl, asg)).procs[q].perm_bytes
            for q in range(4)
        )
        assert bound <= perm_bytes + biggest_panel

    def test_cyclic_panel_placement(self, lu):
        pl = lu.placement(3)
        for k in range(lu.num_panels):
            assert pl[f"P[{k}]"] == k % 3

    def test_rcp_memory_not_scalable_for_lu(self, lu):
        """Figure 7(b): RCP keeps nearly all panels alive; MPO/DTS don't."""
        pl = lu.placement(4)
        asg = lu.assignment(pl)
        m_rcp = analyze_memory(rcp_order(lu.graph, pl, asg)).min_mem
        m_dts = analyze_memory(dts_order(lu.graph, pl, asg)).min_mem
        assert m_dts <= m_rcp

    def test_goodwin_like_pipeline(self):
        prob = build_lu(goodwin_like(scale=0.012), block_size=6)
        store = prob.initial_store()
        execute_serial(prob.graph, store)
        assert prob.factor_error(store) < 1e-10
