"""Unit tests for the synthetic matrix suite."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.matrices import (
    PAPER_DIMENSIONS,
    bcsstk15_like,
    bcsstk24_like,
    bcsstk33_like,
    convection_diffusion_2d,
    goodwin_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    perturbed_grid_spd,
    random_spd,
    truncate,
)


def is_spd(a) -> bool:
    d = a.toarray()
    return np.allclose(d, d.T) and np.linalg.eigvalsh(d).min() > 0


class TestGenerators:
    def test_grid_2d_shape(self):
        a = grid_laplacian_2d(5)
        assert a.shape == (25, 25)
        assert is_spd(a)

    def test_grid_2d_9pt(self):
        a5 = grid_laplacian_2d(6, 5)
        a9 = grid_laplacian_2d(6, 9)
        assert a9.nnz > a5.nnz
        assert is_spd(a9)

    def test_grid_2d_bad_stencil(self):
        with pytest.raises(ValueError):
            grid_laplacian_2d(4, stencil=7)

    def test_grid_3d(self):
        a = grid_laplacian_3d(3)
        assert a.shape == (27, 27)
        assert is_spd(a)

    def test_random_spd(self):
        a = random_spd(40, seed=1)
        assert is_spd(a)

    def test_perturbed_grid_spd(self):
        a = perturbed_grid_spd(6, seed=2)
        assert is_spd(a)

    def test_perturbed_grid_has_long_range_couplings(self):
        base = grid_laplacian_2d(8)
        pert = perturbed_grid_spd(8, extra_per_row=1.0, seed=0)
        assert pert.nnz > base.nnz

    def test_convection_diffusion_unsymmetric(self):
        a = convection_diffusion_2d(6, seed=3).toarray()
        assert not np.allclose(a, a.T)
        assert abs(np.linalg.det(a)) > 0

    def test_determinism(self):
        a1 = perturbed_grid_spd(6, seed=9)
        a2 = perturbed_grid_spd(6, seed=9)
        assert (a1 != a2).nnz == 0


class TestStandIns:
    def test_scaled_sizes(self):
        a = bcsstk15_like(scale=0.05)
        assert 100 < a.shape[0] < 400

    def test_all_constructors(self):
        for fn in (bcsstk15_like, bcsstk24_like, bcsstk33_like):
            a = fn(scale=0.03)
            assert is_spd(a)
        g = goodwin_like(scale=0.01)
        assert sp.issparse(g)

    def test_paper_dimensions_recorded(self):
        assert PAPER_DIMENSIONS["goodwin"] == 7320

    def test_truncate(self):
        a = bcsstk33_like(scale=0.03)
        t = truncate(a, 50)
        assert t.shape == (50, 50)
        assert np.allclose(t.toarray(), a.toarray()[:50, :50])
