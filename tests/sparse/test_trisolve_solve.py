"""Tests for the triangular-solve application and end-to-end solvers."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core import (
    analyze_memory,
    dts_order,
    mpo_order,
    rcp_order,
)
from repro.machine import UNIT_MACHINE, simulate
from repro.rapid.executor import execute_schedule, execute_serial
from repro.sparse.cholesky import build_cholesky
from repro.sparse.lu import build_lu
from repro.sparse.matrices import goodwin_like, perturbed_grid_spd
from repro.sparse.solve import cholesky_solve, lu_solve
from repro.sparse.trisolve import build_trisolve

ORDERINGS = (rcp_order, mpo_order, dts_order)


@pytest.fixture(scope="module")
def chol():
    return build_cholesky(perturbed_grid_spd(8, seed=1), block_size=5)


@pytest.fixture(scope="module")
def factor_store(chol):
    store = chol.initial_store()
    execute_serial(chol.graph, store)
    return store


@pytest.fixture(scope="module")
def rhs(chol):
    return np.random.default_rng(3).normal(size=chol.n)


class TestTrisolveGraphs:
    def test_forward_task_kinds(self, chol):
        tp = build_trisolve(chol, lower=True)
        names = set(tp.graph.task_names)
        assert any(t.startswith("SOLVE") for t in names)
        assert any(t.startswith("XUPD") for t in names)

    def test_updates_commute(self, chol):
        tp = build_trisolve(chol, lower=True)
        assert any(len(v) > 1 for v in tp.graph.commute_groups().values())

    def test_forward_serial_numeric(self, chol, factor_store, rhs):
        tp = build_trisolve(chol, lower=True)
        store = tp.initial_store(factor_store, rhs)
        execute_serial(tp.graph, store)
        l = chol.assemble_factor(factor_store)
        ref = sla.solve_triangular(l, rhs, lower=True)
        assert np.allclose(tp.gather(store), ref)

    def test_backward_serial_numeric(self, chol, factor_store, rhs):
        tp = build_trisolve(chol, lower=False)
        store = tp.initial_store(factor_store, rhs)
        execute_serial(tp.graph, store)
        l = chol.assemble_factor(factor_store)
        ref = sla.solve_triangular(l, rhs, lower=True, trans=1)
        assert np.allclose(tp.gather(store), ref)

    @pytest.mark.parametrize("lower", [True, False])
    @pytest.mark.parametrize("order_fn", ORDERINGS)
    def test_schedules_preserve_numerics(self, chol, factor_store, rhs, lower, order_fn):
        tp = build_trisolve(chol, lower=lower)
        pl = tp.placement(3)
        asg = tp.assignment(pl)
        s = order_fn(tp.graph, pl, asg)
        store = tp.initial_store(factor_store, rhs)
        execute_schedule(s, store)
        l = chol.assemble_factor(factor_store)
        ref = sla.solve_triangular(l, rhs, lower=True, trans=0 if lower else 1)
        assert np.allclose(tp.gather(store), ref)

    @pytest.mark.parametrize("lower", [True, False])
    def test_simulated_under_min_mem(self, chol, lower):
        tp = build_trisolve(chol, lower=lower)
        pl = tp.placement(4)
        asg = tp.assignment(pl)
        s = mpo_order(tp.graph, pl, asg)
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.peak_memory <= prof.min_mem

    def test_segments_owned_with_diagonal(self, chol):
        tp = build_trisolve(chol, lower=True)
        pl = tp.placement(4)
        pr, pc = chol.processor_grid(4)
        for k in range(tp.num_blocks):
            assert pl[f"y[{k}]"] == (k % pr) * pc + (k % pc)

    def test_memory_heuristics_help(self, chol):
        tp = build_trisolve(chol, lower=True)
        pl = tp.placement(4)
        asg = tp.assignment(pl)
        m_rcp = analyze_memory(rcp_order(tp.graph, pl, asg)).min_mem
        m_mpo = analyze_memory(mpo_order(tp.graph, pl, asg)).min_mem
        assert m_mpo <= m_rcp


class TestSolvers:
    def test_cholesky_solve_matches_dense(self, chol, rhs):
        x = cholesky_solve(chol, rhs)
        ref = np.linalg.solve(chol.a.toarray(), rhs)
        assert np.allclose(x, ref)

    def test_cholesky_solve_shape_check(self, chol):
        with pytest.raises(ValueError):
            cholesky_solve(chol, np.zeros(3))

    def test_lu_solve_matches_dense(self):
        prob = build_lu(goodwin_like(scale=0.012), block_size=6)
        rng = np.random.default_rng(5)
        b = rng.normal(size=prob.n)
        x = lu_solve(prob, b)
        ref = np.linalg.solve(prob.a.toarray(), b)
        assert np.allclose(x, ref, atol=1e-8)

    def test_lu_solve_shape_check(self):
        prob = build_lu(goodwin_like(scale=0.012), block_size=6)
        with pytest.raises(ValueError):
            lu_solve(prob, np.zeros(5))
