"""Tests for the Harwell-Boeing file bridge (scipy roundtrip)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.hb import (
    is_structurally_symmetric,
    load_for_experiment,
    read_harwell_boeing,
    write_harwell_boeing,
)
from repro.sparse.matrices import convection_diffusion_2d, grid_laplacian_2d


class TestRoundtrip:
    def test_symmetric_roundtrip(self, tmp_path):
        a = grid_laplacian_2d(6)
        path = tmp_path / "lap.rua"
        write_harwell_boeing(path, a)
        b = read_harwell_boeing(path)
        assert np.allclose(a.toarray(), b.toarray())

    def test_unsymmetric_roundtrip(self, tmp_path):
        a = convection_diffusion_2d(5, seed=1)
        path = tmp_path / "cd.rua"
        write_harwell_boeing(path, a)
        b = read_harwell_boeing(path)
        assert np.allclose(a.toarray(), b.toarray())

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_harwell_boeing(tmp_path / "nope.rsa")

    def test_triangle_expansion(self, tmp_path):
        """A file holding only one triangle is expanded symmetrically."""
        a = grid_laplacian_2d(5)
        lower = sp.csc_matrix(sp.tril(a))
        path = tmp_path / "tri.rua"
        write_harwell_boeing(path, lower)
        b = read_harwell_boeing(path)
        assert np.allclose(b.toarray(), a.toarray())


class TestHelpers:
    def test_structural_symmetry(self):
        assert is_structurally_symmetric(grid_laplacian_2d(4))
        m = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        assert not is_structurally_symmetric(m)

    def test_load_for_experiment_auto(self, tmp_path):
        a = grid_laplacian_2d(5)
        path = tmp_path / "a.rua"
        write_harwell_boeing(path, a)
        out = load_for_experiment(path)
        w = np.linalg.eigvalsh(out.toarray())
        assert w.min() > 0  # usable for Cholesky

    def test_load_for_experiment_lu(self, tmp_path):
        a = convection_diffusion_2d(5, seed=0)
        path = tmp_path / "b.rua"
        write_harwell_boeing(path, a)
        out = load_for_experiment(path, kind="lu")
        assert np.all(out.diagonal() != 0)

    def test_load_kind_mismatch(self, tmp_path):
        a = convection_diffusion_2d(5, seed=0)
        path = tmp_path / "c.rua"
        write_harwell_boeing(path, a)
        with pytest.raises(ValueError):
            load_for_experiment(path, kind="cholesky")

    def test_load_unknown_kind(self, tmp_path):
        a = grid_laplacian_2d(4)
        path = tmp_path / "d.rua"
        write_harwell_boeing(path, a)
        with pytest.raises(ValueError):
            load_for_experiment(path, kind="qr")

    def test_indefinite_boosted(self, tmp_path):
        a = grid_laplacian_2d(4) - sp.eye(16) * 100.0  # indefinite
        path = tmp_path / "e.rua"
        write_harwell_boeing(path, sp.csc_matrix(a))
        out = load_for_experiment(path, kind="cholesky")
        assert np.linalg.eigvalsh(out.toarray()).min() > 0
