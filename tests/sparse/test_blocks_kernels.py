"""Direct unit tests for block partition helpers and dense kernels."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.sparse.blocks import (
    BlockPartition,
    block_col_pattern,
    block_nnz_2d,
    lu_update_pattern,
    panel_nnz_1d,
)
from repro.sparse.kernels import (
    gemm_flops,
    gemm_update,
    lu_factor_flops,
    lu_factor_panel,
    lu_update_flops,
    lu_update_panel,
    potrf,
    potrf_flops,
    trsm_flops,
    trsm_lower,
)


def pattern(entries, n):
    """Column pattern list from (i, j) entry set."""
    cols = [[] for _ in range(n)]
    for i, j in entries:
        cols[j].append(i)
    return [np.array(sorted(c), dtype=np.int64) for c in cols]


class TestBlockHelpers:
    def test_block_nnz_2d(self):
        # entries: (0,0),(1,0),(3,1),(3,3) with w=2
        cols = pattern({(0, 0), (1, 0), (3, 1), (3, 3)}, 4)
        part = BlockPartition(4, 2)
        nnz = block_nnz_2d(cols, part)
        # (0,0) and (1,0) fall in block (0,0); (3,1) in block (1,0);
        # (3,3) in block (1,1).
        assert nnz == {(0, 0): 2, (1, 0): 1, (1, 1): 1}

    def test_block_col_pattern(self):
        cols = pattern({(0, 0), (2, 0), (3, 1), (3, 3)}, 4)
        part = BlockPartition(4, 2)
        pat = block_col_pattern(cols, part)
        assert pat[0] == [0, 1]  # blocks (0,0) and (1,0)
        assert pat[1] == [1]

    def test_panel_nnz_1d(self):
        lower = pattern({(0, 0), (1, 0), (1, 1), (3, 2), (2, 2), (3, 3)}, 4)
        upper = [c.copy() for c in lower]
        part = BlockPartition(4, 2)
        nnz = panel_nnz_1d(lower, upper, part)
        assert len(nnz) == 2 and all(v > 0 for v in nnz)

    def test_lu_update_pattern(self):
        # block (1,0) nonzero -> panel 0 updates panel 1
        cols = pattern({(0, 0), (2, 0), (3, 3), (2, 2)}, 4)
        part = BlockPartition(4, 2)
        upd = lu_update_pattern(cols, part)
        assert upd[0] == [1]
        assert upd[1] == []


class TestCholeskyKernels:
    def setup_method(self):
        rng = np.random.default_rng(0)
        b = rng.normal(size=(4, 4))
        self.a = b @ b.T + 4 * np.eye(4)

    def test_potrf(self):
        l = potrf(self.a)
        assert np.allclose(l @ l.T, self.a)
        assert np.allclose(np.triu(l, 1), 0)

    def test_trsm_lower(self):
        l = potrf(self.a)
        rng = np.random.default_rng(1)
        a_ik = rng.normal(size=(3, 4))
        x = trsm_lower(l, a_ik)
        assert np.allclose(x @ l.T, a_ik)

    def test_gemm_update_in_place(self):
        rng = np.random.default_rng(2)
        a_ij = rng.normal(size=(3, 2))
        before = a_ij.copy()
        l_ik = rng.normal(size=(3, 4))
        l_jk = rng.normal(size=(2, 4))
        gemm_update(a_ij, l_ik, l_jk)
        assert np.allclose(a_ij, before - l_ik @ l_jk.T)

    def test_flop_counts(self):
        assert potrf_flops(6) == pytest.approx(72.0)
        assert trsm_flops(6, 4) == pytest.approx(144.0)
        assert gemm_flops(2, 3, 4) == pytest.approx(48.0)
        assert lu_factor_flops(10, 3) == pytest.approx(180.0)
        assert lu_update_flops(10, 3, 2) == pytest.approx(120.0)


class TestLUKernels:
    def test_factor_matches_scipy_on_full_panel(self):
        rng = np.random.default_rng(3)
        n = 6
        a = rng.normal(size=(n, n)) + np.eye(n) * 0.1
        panel = {"A": a.copy(), "piv": []}
        lu_factor_panel(panel, 0, n)
        lu_ref, piv_ref = sla.lu_factor(a)
        assert np.allclose(panel["A"], lu_ref)
        assert [r for _gc, r in panel["piv"]] == list(piv_ref)

    def test_structurally_singular_detected(self):
        panel = {"A": np.zeros((3, 2)), "piv": []}
        with pytest.raises(ZeroDivisionError):
            lu_factor_panel(panel, 0, 2)

    def test_update_equals_dense_elimination(self):
        """Factor panel 0, update panel 1; the pair must equal a dense
        getrf of the combined matrix restricted to those columns."""
        rng = np.random.default_rng(4)
        n, w = 6, 3
        a = rng.normal(size=(n, n)) + 0.1 * np.eye(n)
        p0 = {"A": a[:, :w].copy(), "piv": []}
        p1 = {"A": a[:, w:].copy(), "piv": []}
        lu_factor_panel(p0, 0, w)
        lu_update_panel(p0, p1, 0, w)
        lu_factor_panel(p1, w, n)
        m = np.hstack([p0["A"], p1["A"]])
        # apply later swaps to earlier L columns (LAPACK convention)
        for gc, r in p1["piv"]:
            if r != gc:
                m[[gc, r], :w] = m[[r, gc], :w]
        ref, piv = sla.lu_factor(a)
        assert np.allclose(m, ref)
