"""Unit tests for ordering, etree and symbolic factorization."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.sparse.etree import elimination_tree, postorder, tree_depths, tree_height
from repro.sparse.matrices import (
    convection_diffusion_2d,
    grid_laplacian_2d,
    perturbed_grid_spd,
)
from repro.sparse.ordering import (
    apply_ordering,
    minimum_degree,
    natural,
    order_matrix,
    rcm,
)
from repro.sparse.symbolic import (
    cholesky_flops,
    fill_nnz,
    pattern_to_csc,
    symbolic_cholesky,
    symbolic_lu_static,
)


def brute_force_fill(a):
    """Reference right-looking symbolic elimination."""
    n = a.shape[0]
    d = ((a + a.T).toarray() != 0)
    cols = [set(np.nonzero(d[j:, j])[0] + j) | {j} for j in range(n)]
    for k in range(n):
        below = sorted(x for x in cols[k] if x > k)
        for j in below:
            cols[j].update(x for x in below if x >= j)
    return cols


class TestOrdering:
    def test_md_is_permutation(self):
        a = perturbed_grid_spd(7, seed=1)
        p = minimum_degree(a)
        assert sorted(p.tolist()) == list(range(a.shape[0]))

    def test_rcm_is_permutation(self):
        a = perturbed_grid_spd(7, seed=1)
        p = rcm(a)
        assert sorted(p.tolist()) == list(range(a.shape[0]))

    def test_md_reduces_fill(self):
        a = grid_laplacian_2d(10)
        f_nat = fill_nnz(symbolic_cholesky(a)[0])
        f_md = fill_nnz(symbolic_cholesky(apply_ordering(a, minimum_degree(a)))[0])
        assert f_md < f_nat

    def test_order_matrix_dispatch(self):
        a = grid_laplacian_2d(5)
        for m in ("md", "rcm", "natural"):
            am, perm = order_matrix(a, m)
            assert am.shape == a.shape
        with pytest.raises(ValueError):
            order_matrix(a, "nope")

    def test_natural(self):
        a = grid_laplacian_2d(4)
        assert (natural(a) == np.arange(16)).all()

    def test_apply_ordering_symmetric(self):
        a = perturbed_grid_spd(5, seed=0)
        perm = minimum_degree(a)
        am = apply_ordering(a, perm)
        assert np.allclose(am.toarray(), am.toarray().T)


class TestEtree:
    def test_parent_is_forest(self):
        a = grid_laplacian_2d(6)
        parent = elimination_tree(a)
        # parents point forward (upper triangular structure)
        for v, p in enumerate(parent):
            assert p == -1 or p > v

    def test_postorder_children_first(self):
        a = grid_laplacian_2d(6)
        parent = elimination_tree(a)
        po = postorder(parent)
        pos = {int(v): i for i, v in enumerate(po)}
        for v, p in enumerate(parent):
            if p != -1:
                assert pos[v] < pos[int(p)]

    def test_depths_and_height(self):
        a = grid_laplacian_2d(6)
        parent = elimination_tree(a)
        d = tree_depths(parent)
        assert tree_height(parent) == d.max() + 1
        roots = [v for v, p in enumerate(parent) if p == -1]
        assert all(d[r] == 0 for r in roots)


class TestSymbolicCholesky:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        a = perturbed_grid_spd(6, seed=seed)
        cols, _ = symbolic_cholesky(a)
        bf = brute_force_fill(a)
        for j in range(a.shape[0]):
            assert set(map(int, cols[j])) == bf[j]

    def test_contains_numeric_pattern(self):
        a = perturbed_grid_spd(7, seed=3)
        cols, _ = symbolic_cholesky(a)
        l = np.linalg.cholesky(a.toarray())
        for j in range(a.shape[0]):
            num = set(np.nonzero(np.abs(l[:, j]) > 1e-14)[0])
            assert num <= set(map(int, cols[j]))

    def test_pattern_to_csc(self):
        a = grid_laplacian_2d(4)
        cols, _ = symbolic_cholesky(a)
        m = pattern_to_csc(cols, a.shape[0])
        assert m.nnz == fill_nnz(cols)

    def test_flops_positive(self):
        a = grid_laplacian_2d(5)
        cols, _ = symbolic_cholesky(a)
        assert cholesky_flops(cols) >= fill_nnz(cols)


class TestStaticLU:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_george_ng_bound_contains_u(self, seed):
        """George-Ng: struct(U) of PA = LU is contained in the Cholesky
        pattern of AtA for *any* partial pivoting.  (The L factor's rows
        live in permuted order, so a same-index containment claim is not
        meaningful for it — the update-pruning logic of the 1-D LU
        builder only relies on the U side.)"""
        a = convection_diffusion_2d(5, seed=seed)
        lower, _upper = symbolic_lu_static(a)
        n = a.shape[0]
        _p, _l, u = sla.lu(a.toarray())
        bound = set()
        for j, c in enumerate(lower):
            for i in c:
                bound.add((int(i), j))
                bound.add((j, int(i)))
        num_u = {
            (i, j)
            for i in range(n)
            for j in range(i, n)
            if abs(u[i, j]) > 1e-12
        }
        assert num_u <= bound

    @pytest.mark.parametrize("wind", [0.0, 4.0])
    def test_skipped_updates_are_noops(self, wind):
        """The operational guarantee behind update pruning: panels the
        static bound marks as unaffected stay numerically untouched."""
        import numpy as np

        from repro.rapid.executor import execute_serial
        from repro.sparse.lu import build_lu

        a = convection_diffusion_2d(6, wind=wind, seed=1)
        prob = build_lu(a, block_size=5, ordering="natural")
        store = prob.initial_store()
        execute_serial(prob.graph, store)
        assert prob.factor_error(store) < 1e-10

    def test_upper_mirrors_lower(self):
        a = convection_diffusion_2d(4, seed=2)
        lower, upper = symbolic_lu_static(a)
        for lo, up in zip(lower, upper):
            assert (lo == up).all()
