"""Tests for the cell-based N-body application."""

import numpy as np
import pytest

from repro.core import (
    analyze_memory,
    dts_order,
    mpo_order,
    rcp_order,
)
from repro.machine import UNIT_MACHINE, simulate
from repro.nbody import build_nbody, cell_name, force_name
from repro.rapid.executor import execute_schedule, execute_serial

ORDERINGS = (rcp_order, mpo_order, dts_order)


@pytest.fixture(scope="module")
def prob():
    return build_nbody(k=3, steps=2, seed=7)


class TestStructure:
    def test_task_kinds(self, prob):
        names = set(prob.graph.task_names)
        assert "ZERO(0,0)@0" in names
        assert "MOVE(2,2)@1" in names
        assert any(t.startswith("FORCE") for t in names)

    def test_mixed_granularity(self, prob):
        weights = {t.weight for t in prob.graph.tasks() if t.name.startswith("FORCE")}
        assert len(weights) > 1

    def test_force_accumulations_commute(self, prob):
        groups = prob.graph.commute_groups()
        assert any(len(v) > 1 for v in groups.values())

    def test_steps_chain(self, prob):
        """Step 1's force tasks depend on step 0's moves."""
        g = prob.graph
        assert g.has_edge("MOVE(1,1)@0", "FORCE(1,1|1,1)@1")

    def test_neighbours_clipped(self, prob):
        corners = list(prob.neighbours(0, 0))
        assert len(corners) == 4
        middle = list(prob.neighbours(1, 1))
        assert len(middle) == 9

    def test_placement_covers_objects(self, prob):
        pl = prob.placement(4)
        for c in prob.cells():
            assert cell_name(*c) in pl and force_name(*c) in pl
            assert pl[cell_name(*c)] == pl[force_name(*c)]


class TestNumerics:
    def test_serial_matches_reference(self, prob):
        store = prob.initial_store()
        execute_serial(prob.graph, store)
        got = prob.gather_positions(store)
        assert np.allclose(got, prob.reference_trajectory(), atol=1e-12)

    @pytest.mark.parametrize("order_fn", ORDERINGS)
    def test_schedules_preserve_trajectory(self, prob, order_fn):
        pl = prob.placement(3)
        asg = prob.assignment(pl)
        s = order_fn(prob.graph, pl, asg)
        store = prob.initial_store()
        execute_schedule(s, store)
        got = prob.gather_positions(store)
        assert np.allclose(got, prob.reference_trajectory(), atol=1e-10)

    def test_deterministic_build(self):
        p1 = build_nbody(k=3, steps=1, seed=3)
        p2 = build_nbody(k=3, steps=1, seed=3)
        assert (p1.counts == p2.counts).all()
        assert p1.graph.num_edges == p2.graph.num_edges


class TestExecution:
    @pytest.mark.parametrize("order_fn", ORDERINGS)
    def test_simulated_at_min_mem(self, prob, order_fn):
        pl = prob.placement(4)
        asg = prob.assignment(pl)
        s = order_fn(prob.graph, pl, asg)
        pr = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=pr.min_mem, profile=pr)
        assert res.peak_memory <= pr.min_mem

    def test_volatile_neighbours_exist(self, prob):
        """With multiple processors, some neighbour cells are volatile —
        the force tasks genuinely communicate."""
        pl = prob.placement(4)
        asg = prob.assignment(pl)
        s = rcp_order(prob.graph, pl, asg)
        pr = analyze_memory(s)
        assert any(p.vola_bytes > 0 for p in pr.procs)

    def test_multi_version_traffic(self, prob):
        """Cells cross processors once per step (multiple versions of the
        same volatile object) — the scenario that exercised the sync-edge
        semantics of the simulator."""
        pl = prob.placement(4)
        asg = prob.assignment(pl)
        s = rcp_order(prob.graph, pl, asg)
        pr = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=pr.min_mem, profile=pr)
        # more data messages than volatile objects => versioned re-sends
        n_vola = sum(len(p.span) for p in pr.procs)
        assert res.total_data_msgs > n_vola
