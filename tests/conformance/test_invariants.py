"""Unit tests of the invariant catalogue, checker hooks, cycle finder,
deadlock witness and failure-trace export."""

import json

import pytest

from repro.conformance import (
    INVARIANTS,
    InvariantChecker,
    check_batch,
    deadlock_witness,
    find_cycle,
    run_check,
    violation_trace,
    write_violation_trace,
)
from repro.core.rcp import rcp_order
from repro.errors import DeadlockError, InvariantViolationError
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.machine.simulator import CompiledSchedule


@pytest.fixture(scope="module")
def paper_compiled():
    g = paper_example_graph()
    pl = paper_placement()
    return CompiledSchedule(rcp_order(g, pl, paper_assignment(g, pl)))


def make_checker(paper_compiled, **kw):
    c = InvariantChecker(paper_compiled, **kw)
    c.on_run_begin(0.0, 2, 10, True)
    return c


class TestCatalogue:
    def test_six_invariants_with_paper_anchors(self):
        assert set(INVARIANTS) == {
            "input-residency", "landing-space", "slot-overwrite",
            "capacity", "suspended-drain", "termination",
        }
        for anchor, statement in INVARIANTS.values():
            assert anchor and statement

    def test_violation_str_cites_the_anchor(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_alloc(1.0, 0, "d1", 99, 99)
        (v,) = c.violations
        assert v.invariant == "capacity"
        assert "Definitions 5/6" in str(v)


class TestCheckerHooks:
    def test_clean_paper_run(self, paper_compiled):
        r = run_check(paper_compiled.schedule, compiled=paper_compiled)
        assert r.ok
        assert r.violations == []
        assert r.checker.ok
        assert len(r.checker.window) > 0
        assert r.checker.report() == "all invariants held"

    def test_input_residency_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        # T[1,3] reads d1 from P1's unit T[1]; nothing arrived yet.
        task = next(
            t for t, reqs in paper_compiled.needs.items()
            if any(r[0] == "data" for r in reqs)
        )
        c.on_exe(1.0, 2.0, 0, task)
        assert any(v.invariant == "input-residency" for v in c.violations)

    def test_residency_satisfied_after_arrival(self, paper_compiled):
        c = make_checker(paper_compiled)
        task = next(
            t for t, reqs in paper_compiled.needs.items()
            if reqs and all(r[0] == "data" for r in reqs)
        )
        for _kind, obj, unit in paper_compiled.needs[task]:
            c.on_alloc(0.5, 0, obj, 1, 1)
            c.on_data_arrive(0.6, 0, obj, unit, 1)
        c.on_exe(1.0, 2.0, 0, task)
        assert c.violations == []

    def test_landing_space_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_data_arrive(1.0, 0, "d1", "T[1]", 1)
        assert [v.invariant for v in c.violations] == ["landing-space"]

    def test_free_kills_residency(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_alloc(0.5, 0, "d1", 1, 1)
        c.on_data_arrive(0.6, 0, "d1", "T[1]", 1)
        c.on_free(0.7, 0, "d1", 1, 0)
        assert ("d1", "T[1]") not in c._resident[0]

    def test_capacity_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_alloc(1.0, 1, "d3", 11, 11)
        assert [v.invariant for v in c.violations] == ["capacity"]

    def test_slot_overwrite_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_package_send(1.0, 0, 1, 2)
        c.on_package_send(2.0, 0, 1, 1)
        assert [v.invariant for v in c.violations] == ["slot-overwrite"]

    def test_slot_read_then_resend_is_legal(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_package_send(1.0, 0, 1, 2)
        c.on_package_read(1.5, 1, 0, 2)
        c.on_package_send(2.0, 0, 1, 1)
        assert c.violations == []

    def test_unconsumed_slot_at_run_end_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_package_send(1.0, 0, 1, 2)
        c.on_proc_end(3.0, 0)
        c.on_proc_end(3.0, 1)
        c.on_run_end(3.0)
        assert any(v.invariant == "slot-overwrite" for v in c.violations)

    def test_suspended_drain_flagged_at_proc_end(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_put_suspend(1.0, 0, 1, "d1", "T[1]", 1)
        c.on_proc_end(2.0, 0)
        assert any(v.invariant == "suspended-drain" for v in c.violations)

    def test_termination_flagged(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_proc_end(2.0, 0)
        c.on_run_end(2.0)
        assert [v.invariant for v in c.violations] == ["termination"]

    def test_strict_mode_raises(self, paper_compiled):
        c = make_checker(paper_compiled, strict=True)
        with pytest.raises(InvariantViolationError) as ei:
            c.on_alloc(1.0, 0, "d1", 99, 99)
        assert ei.value.violation.invariant == "capacity"

    def test_run_begin_resets(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_alloc(1.0, 0, "d1", 99, 99)
        assert c.violations
        c.on_run_begin(0.0, 2, 10, True)
        assert c.violations == [] and len(c.window) == 0


class TestCycleFinder:
    def test_two_cycle(self):
        cyc = find_cycle({0: {1}, 1: {0}})
        assert cyc is not None and cyc[0] == cyc[-1] and len(cyc) == 3

    def test_three_cycle_with_tail(self):
        cyc = find_cycle({0: {1}, 1: {2}, 2: {0}, 3: {0}})
        assert cyc is not None
        assert set(cyc) == {0, 1, 2}

    def test_acyclic(self):
        assert find_cycle({0: {1}, 1: {2}, 2: set()}) is None

    def test_empty(self):
        assert find_cycle({}) is None


class TestDeadlockWitness:
    def make_err(self, with_edges=True):
        err = DeadlockError({0: "REC", 1: "END"}, 5, 6)
        err.details = {0: "next=r missing=['data d@u']", 1: "END suspended"}
        if with_edges:
            err.wait_for = {0: {1}, 1: {0}}
        return err

    def test_cycle_reported(self):
        w = deadlock_witness(self.make_err())
        assert "DEADLOCK: 5/6" in w
        assert "cycle: P0 -> P1 -> P0" in w
        assert "wait-for: P0 -> {P1}" in w

    def test_acyclic_explained(self):
        err = self.make_err()
        err.wait_for = {0: {1}, 1: set()}
        w = deadlock_witness(err)
        assert "no wait-for cycle" in w and "lost" in w

    def test_without_edges_still_renders(self):
        w = deadlock_witness(self.make_err(with_edges=False))
        assert "DEADLOCK" in w and "cycle" not in w


class TestViolationTrace:
    def test_trace_structure(self, paper_compiled):
        r = run_check(paper_compiled.schedule, compiled=paper_compiled)
        doc = violation_trace(r.checker, label="paper")
        assert doc["otherData"]["schema"] == "repro-conformance-trace/1"
        assert doc["otherData"]["violations"] == 0
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        body = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert body and all("detail" in e["args"] for e in body)
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)

    def test_violation_becomes_process_instant(self, paper_compiled):
        c = make_checker(paper_compiled)
        c.on_alloc(1.0, 0, "d1", 99, 99)
        doc = violation_trace(c)
        marks = [
            e for e in doc["traceEvents"]
            if e.get("cat") == "violation"
        ]
        assert len(marks) == 1 and marks[0]["s"] == "p"

    def test_write_violation_trace(self, paper_compiled, tmp_path):
        r = run_check(paper_compiled.schedule, compiled=paper_compiled)
        path = tmp_path / "window.json"
        text = write_violation_trace(r.checker, str(path))
        assert json.loads(path.read_text()) == json.loads(text)


class TestBatch:
    def test_batch_is_clean_and_reproducible(self, seeded_case):
        a = check_batch(3, graphs=2, include_paper=False)
        b = check_batch(3, graphs=2, include_paper=False)
        assert [r.summary() for r in a] == [r.summary() for r in b]
        assert all(r.ok for r in a)
        # the batch's dag labels reflect the seeds
        assert {r.label.split("/")[0] for r in a} == {"dag3", "dag4"}
