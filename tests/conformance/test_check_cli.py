"""CLI contract of `repro check` and `repro sweep --check`."""

import json

from repro.cli import main


def test_check_clean_exit_zero(capsys):
    assert main(["check", "--seed", "7", "--graphs", "2"]) == 0
    out = capsys.readouterr().out
    assert "9/9 checked runs clean" in out
    assert "paper/rcp: OK" in out and "oracle ok" in out


def test_check_overwrite_fails_with_witness(tmp_path, capsys):
    trace = tmp_path / "fail.json"
    code = main([
        "check", "--fault", "overwrite", "--graphs", "1",
        "--trace-out", str(trace),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "slot-overwrite" in out
    assert "cycle: P0 -> P1 -> P0" in out
    doc = json.loads(trace.read_text())
    assert doc["otherData"]["schema"] == "repro-conformance-trace/1"
    assert doc["otherData"]["violations"] >= 1


def test_check_nonbreaking_fault_stays_clean(capsys):
    assert main(["check", "--fault", "slow", "--graphs", "1"]) == 0
    assert "checked runs clean" in capsys.readouterr().out


def test_list_mentions_check(capsys):
    assert main(["list"]) == 0
    assert "check" in capsys.readouterr().out.split()


def test_sweep_check_column(tmp_path, capsys):
    """`sweep --check` appends the violations column; without the flag
    the CSV is unchanged (byte-identical opt-in contract)."""
    plain = tmp_path / "plain.csv"
    checked = tmp_path / "checked.csv"
    assert main(["sweep", "--procs", "4", "--out", str(plain)]) == 0
    assert main(["sweep", "--procs", "4", "--check", "--out", str(checked)]) == 0
    capsys.readouterr()
    plain_lines = plain.read_text().splitlines()
    checked_lines = checked.read_text().splitlines()
    assert not plain_lines[0].endswith(",violations")
    assert checked_lines[0] == plain_lines[0] + ",violations"
    for pl_row, ck_row in zip(plain_lines[1:], checked_lines[1:]):
        prefix, viol = ck_row.rsplit(",", 1)
        assert prefix == pl_row  # timing unchanged by the checker
        assert viol in ("0.0", "inf")
