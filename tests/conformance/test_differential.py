"""Differential oracle: serial executor vs schedule linearization vs
simulator-modeled dataflow must agree on the final store."""

import numpy as np
import pytest

from repro.conformance import differential_check, replay_versions
from repro.conformance.oracle import DataflowRecorder
from repro.core.dts import dts_order
from repro.core.mpo import mpo_order
from repro.core.rcp import rcp_order
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.machine.simulator import CompiledSchedule, Simulator
from repro.machine.spec import UNIT_MACHINE
from repro.rapid.executor import execute_serial, global_order
from repro.sparse.cholesky import build_cholesky
from repro.sparse.matrices import bcsstk15_like

ORDERINGS = {"rcp": rcp_order, "mpo": mpo_order, "dts": dts_order}


@pytest.mark.parametrize("heuristic", sorted(ORDERINGS))
def test_paper_example_versions_agree(heuristic):
    g = paper_example_graph()
    pl = paper_placement()
    s = ORDERINGS[heuristic](g, pl, paper_assignment(g, pl))
    rep = differential_check(s)
    assert rep.ok and rep.versions_ok
    assert rep.values_ok is None  # timing-only graph: no kernels


@pytest.mark.parametrize("seed", range(10))
def test_seeded_graphs_versions_agree(seed, seeded_case):
    case = seeded_case(seed=seed, procs=3)
    for order_fn in ORDERINGS.values():
        s = order_fn(case.graph, case.placement, case.assignment)
        rep = differential_check(s)
        assert rep.ok, str(rep)


def test_recorder_matches_replay():
    """The simulator's recorded dataflow equals a pure replay of the
    schedule's linearization."""
    g = paper_example_graph()
    pl = paper_placement()
    s = rcp_order(g, pl, paper_assignment(g, pl))
    compiled = CompiledSchedule(s)
    rec = DataflowRecorder(compiled)
    Simulator(
        spec=UNIT_MACHINE, capacity=compiled.profile.tot,
        compiled=compiled, instrument=rec,
    ).run()
    assert rec.final == replay_versions(g, global_order(s))


@pytest.fixture(scope="module")
def kernel_problem():
    return build_cholesky(bcsstk15_like(scale=0.05), block_size=8)


def test_kernel_graph_values_agree(kernel_problem):
    """With kernels present the oracle also compares numeric values."""
    prob = kernel_problem
    pl = prob.placement(3)
    s = mpo_order(prob.graph, pl, prob.assignment(pl))
    rep = differential_check(s, store_factory=prob.initial_store)
    assert rep.ok
    assert rep.values_ok is True
    assert rep.mismatches == []


def test_kernel_graph_serial_vs_schedule_values(kernel_problem):
    """execute_serial in topological vs schedule order: identical stores."""
    prob = kernel_problem
    pl = prob.placement(2)
    s = rcp_order(prob.graph, pl, prob.assignment(pl))
    a = execute_serial(prob.graph, prob.initial_store())
    b = execute_serial(prob.graph, prob.initial_store(), global_order(s))
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_allclose(a[k], b[k], rtol=1e-9, atol=1e-12)


def test_oracle_reports_injected_version_mismatch():
    """A corrupted recorder result must surface as a mismatch (the
    oracle is not vacuous)."""
    g = paper_example_graph()
    pl = paper_placement()
    s = rcp_order(g, pl, paper_assignment(g, pl))
    good = replay_versions(g, g.topological_order())
    bad = dict(good)
    some_obj = sorted(bad)[0]
    bad[some_obj] = "bogus-unit"
    assert good != bad  # the replayed map is sensitive to corruption
    rep = differential_check(s)
    assert rep.ok  # sanity: the real pipeline agrees
