"""Fault-injection layer: determinism, identity fast path, effect on
makespan, and the deliberate slot-overwrite detection."""

import pytest

from repro.conformance import FAULT_KINDS, FaultSpec, fault_preset, run_check
from repro.conformance.check import overwrite_demo, overwrite_scenario
from repro.core.rcp import rcp_order
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.machine.simulator import Simulator
from repro.machine.spec import UNIT_MACHINE


@pytest.fixture(scope="module")
def paper_schedule():
    g = paper_example_graph()
    pl = paper_placement()
    return rcp_order(g, pl, paper_assignment(g, pl))


class TestFaultSpec:
    def test_identity_is_inactive(self):
        assert not FaultSpec().active

    def test_tighten_is_sim_inactive(self):
        spec = fault_preset("tighten")
        assert not spec.active  # harness-level knob only
        assert spec.capacity_fraction == 0.0

    @pytest.mark.parametrize(
        "kind", [k for k in FAULT_KINDS if k != "tighten"]
    )
    def test_sim_level_presets_are_active(self, kind):
        assert fault_preset(kind).active

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_preset("gamma-rays")

    def test_injector_scopes_rng_per_run(self):
        spec = fault_preset("jitter", seed=5)
        a, b = spec.injector(), spec.injector()
        seq_a = [a.put_delay(0, 1, 1.0) for _ in range(5)]
        seq_b = [b.put_delay(0, 1, 1.0) for _ in range(5)]
        assert seq_a == seq_b
        assert any(x > 0 for x in seq_a)

    def test_slow_procs_scoping(self):
        fi = FaultSpec(slowdown=3.0, slow_procs=(1,)).injector()
        assert fi.exe_factor(1) == 3.0
        assert fi.exe_factor(0) == 1.0
        fi_all = FaultSpec(slowdown=2.0).injector()
        assert fi_all.exe_factor(0) == fi_all.exe_factor(7) == 2.0


class TestFaultedRuns:
    def pt(self, sched, faults=None):
        return Simulator(sched, spec=UNIT_MACHINE, faults=faults).run().parallel_time

    def test_inactive_spec_changes_nothing(self, paper_schedule):
        assert self.pt(paper_schedule, FaultSpec()) == self.pt(paper_schedule)

    def test_faulted_runs_are_deterministic(self, paper_schedule):
        spec = fault_preset("consume", seed=11)
        assert self.pt(paper_schedule, spec) == self.pt(paper_schedule, spec)

    def test_delay_inflates_makespan(self, paper_schedule):
        assert self.pt(paper_schedule, fault_preset("delay")) > self.pt(paper_schedule)

    def test_jitter_seed_changes_outcome(self, paper_schedule):
        a = self.pt(paper_schedule, fault_preset("jitter", seed=0))
        b = self.pt(paper_schedule, fault_preset("jitter", seed=1))
        assert a != b

    def test_slowdown_inflates_makespan(self, paper_schedule):
        assert self.pt(paper_schedule, fault_preset("slow")) > self.pt(paper_schedule)

    def test_faulted_run_stays_clean(self, paper_schedule):
        for kind in ("delay", "jitter", "consume", "slow", "tighten"):
            r = run_check(paper_schedule, faults=fault_preset(kind))
            assert r.ok, f"{kind}: {r.summary()}"


class TestOverwriteDetection:
    def test_scenario_is_clean_without_the_fault(self):
        sched, plan, cap = overwrite_scenario()
        res = Simulator(sched, capacity=cap, plan=plan).run()
        assert res.parallel_time > 0

    def test_overwrite_detected_with_cycle_witness(self):
        r = overwrite_demo()
        assert not r.ok
        assert [v.invariant for v in r.violations] == ["slot-overwrite"]
        assert r.deadlock is not None
        assert "cycle: P0 -> P1 -> P0" in r.deadlock
        assert "missing=['data d1@p1']" in r.deadlock

    def test_overwrite_demo_is_deterministic(self):
        assert overwrite_demo().deadlock == overwrite_demo().deadlock
