"""Fault-matrix regression: (fault kind x heuristic) on the paper
example.  Invariants must hold in every cell, and the makespan
degradation ratios are golden values — the simulation plus seeded faults
is fully deterministic, so any drift is a behaviour change."""

import pytest

from repro.conformance import fault_preset, run_check
from repro.conformance.check import overwrite_demo
from repro.core.dts import dts_order
from repro.core.mpo import mpo_order
from repro.core.rcp import rcp_order
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)

ORDERINGS = {"rcp": rcp_order, "mpo": mpo_order, "dts": dts_order}

#: Golden PT(faulted)/PT(clean) ratios (seed 0 presets, UNIT_MACHINE).
GOLDEN = {
    "rcp": {"delay": 1.705882, "jitter": 1.20134, "consume": 1.0,
            "slow": 1.470588, "tighten": 1.117647},
    "mpo": {"delay": 1.647059, "jitter": 1.198687, "consume": 1.0,
            "slow": 1.294118, "tighten": 1.117647},
    "dts": {"delay": 1.823529, "jitter": 1.318987, "consume": 1.0,
            "slow": 1.352941, "tighten": 1.117647},
}

#: Loose physical bounds: a fault never speeds the run up, and the
#: presets never more than double the paper example's makespan.
MAX_DEGRADATION = 2.0


@pytest.fixture(scope="module")
def schedules():
    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    return {h: fn(g, pl, asg) for h, fn in ORDERINGS.items()}


@pytest.mark.parametrize("heuristic", sorted(ORDERINGS))
@pytest.mark.parametrize("kind", sorted(GOLDEN["rcp"]))
def test_fault_matrix_cell(schedules, heuristic, kind):
    sched = schedules[heuristic]
    base = run_check(sched, oracle=False)
    assert base.ok
    cell = run_check(sched, faults=fault_preset(kind), oracle=False)
    assert cell.ok, cell.summary()  # invariants hold under the fault
    ratio = cell.parallel_time / base.parallel_time
    assert ratio == pytest.approx(GOLDEN[heuristic][kind], rel=1e-4)
    assert 1.0 - 1e-9 <= ratio <= MAX_DEGRADATION


@pytest.mark.parametrize("heuristic", sorted(ORDERINGS))
def test_overwrite_column_is_detected(schedules, heuristic):
    """The protocol-breaking kind: plans are self-throttling so the
    heuristics' own schedules survive it, and the buggy-planner demo is
    caught."""
    cell = run_check(
        schedules[heuristic], faults=fault_preset("overwrite"), oracle=False
    )
    # no organic overwrite on the paper example, but the run must not
    # silently corrupt anything either
    assert cell.deadlock is None and cell.error is None
    demo = overwrite_demo()
    assert not demo.ok
    assert any(v.invariant == "slot-overwrite" for v in demo.violations)
