"""Property tests: Theorem 1 as checked executions.

Random DAGs, all three heuristics, any capacity in ``[MIN_MEM, TOT]``
(which is always at least the plan's statically predicted peak): the
online invariant checker must observe zero violations and the run must
terminate — with and without (non-breaking) injected faults.
"""

from hypothesis import given, settings, strategies as st

from repro.conformance import InvariantChecker, fault_preset, run_check
from repro.core import analyze_memory, cyclic_placement, owner_compute_assignment
from repro.core.dts import dts_order
from repro.core.mpo import mpo_order
from repro.core.rcp import rcp_order
from repro.graph import generators as gen
from repro.machine.simulator import CompiledSchedule, Simulator
from repro.machine.spec import UNIT_MACHINE

ORDERINGS = (rcp_order, mpo_order, dts_order)

params = st.tuples(
    st.integers(10, 35),
    st.integers(3, 8),
    st.integers(0, 10_000),
    st.integers(2, 4),
)


def make(ps):
    n, m, seed, p = ps
    g = gen.random_trace(n, m, seed=seed)
    pl = cyclic_placement(g, p)
    return g, pl, owner_compute_assignment(g, pl)


@settings(max_examples=20, deadline=None)
@given(params, st.sampled_from(ORDERINGS), st.floats(0.0, 1.0))
def test_zero_violations_at_any_feasible_capacity(ps, order_fn, frac):
    """Capacity >= max(plan.predicted_peaks()) => clean checked run."""
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    prof = analyze_memory(s)
    cap = int(prof.min_mem + frac * (prof.tot - prof.min_mem))
    compiled = CompiledSchedule(s, profile=prof)
    assert cap >= max(compiled.plan_for(cap).predicted_peaks())
    checker = InvariantChecker(compiled)
    res = Simulator(
        spec=UNIT_MACHINE, capacity=cap, compiled=compiled, instrument=checker
    ).run()
    assert checker.ok, checker.report()
    assert res.parallel_time > 0  # terminated


@settings(max_examples=12, deadline=None)
@given(
    params,
    st.sampled_from(ORDERINGS),
    st.sampled_from(("delay", "jitter", "consume", "slow", "tighten")),
    st.integers(0, 1_000),
)
def test_faulted_runs_stay_clean(ps, order_fn, kind, fault_seed):
    """Theorem 1 under perturbation: any non-breaking fault still yields
    a terminating run with zero violations and a consistent oracle."""
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    r = run_check(s, faults=fault_preset(kind, seed=fault_seed))
    assert r.ok, r.summary()


@settings(max_examples=10, deadline=None)
@given(params, st.sampled_from(ORDERINGS))
def test_checked_run_does_not_perturb_timing(ps, order_fn):
    """The checker is an observer: attaching it never changes the
    simulated makespan."""
    g, pl, asg = make(ps)
    s = order_fn(g, pl, asg)
    compiled = CompiledSchedule(s)
    cap = max(compiled.profile.tot, 1)
    plain = Simulator(spec=UNIT_MACHINE, capacity=cap, compiled=compiled).run()
    checker = InvariantChecker(compiled)
    checked = Simulator(
        spec=UNIT_MACHINE, capacity=cap, compiled=compiled, instrument=checker
    ).run()
    assert checked.parallel_time == plain.parallel_time
    assert checker.ok
