"""Integration tests against the paper's worked example (Figures 2/3/5).

These tests assert every quantitative fact the paper states about its
20-task / 11-object example: the PERM/VOLA sets, the MEM_REQ values, the
MIN_MEM progression 9 (RCP) / 8 (MPO) / 7 (DTS), the dead points, the
MAP placement narrative of Figure 3(a), and the DCG slice order of
Figure 5(a).
"""

import pytest

from repro.core import (
    analyze_memory,
    dts_order,
    gantt,
    mem_req_of_task,
    mpo_order,
    plan_maps,
    rcp_order,
)
from repro.core.dcg import build_dcg
from repro.core.dts import dts_space_bound
from repro.core.placement import perm_vola_sets
from repro.errors import NonExecutableScheduleError
from repro.graph.paper_example import (
    DCG_SLICE_ORDER,
    paper_assignment,
    paper_example_graph,
    paper_placement,
    schedule_b,
    schedule_c,
)
from repro.machine import UNIT_MACHINE, simulate


@pytest.fixture(scope="module")
def example():
    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    return g, pl, asg


class TestStructure:
    def test_twenty_tasks_eleven_objects(self, example):
        g, _, _ = example
        assert g.num_tasks == 20
        assert g.num_objects == 11

    def test_ownership_cyclic(self, example):
        _, pl, _ = example
        # owner(d_i) = (i-1) mod 2
        assert pl["d1"] == 0 and pl["d2"] == 1 and pl["d11"] == 0

    def test_perm_vola_sets(self, example):
        """Definition 3 sets exactly as printed in section 2."""
        g, pl, asg = example
        perm, vola = perm_vola_sets(g, pl, asg)
        assert perm[0] == {"d1", "d3", "d5", "d7", "d9", "d11"}
        assert perm[1] == {"d2", "d4", "d6", "d8", "d10"}
        assert vola[0] == {"d8"}
        assert vola[1] == {"d1", "d3", "d5", "d7"}


class TestFigure2Schedules:
    def test_min_mem_b_is_9(self, example):
        g, _, _ = example
        assert analyze_memory(schedule_b(g)).min_mem == 9

    def test_min_mem_c_is_8(self, example):
        g, _, _ = example
        assert analyze_memory(schedule_c(g)).min_mem == 8

    def test_mem_req_values(self, example):
        """MEM_REQ(T[8,9], P0) = 7 and MEM_REQ(T[7,8], P1) = 9 in (b)."""
        g, _, _ = example
        prof = analyze_memory(schedule_b(g))
        assert mem_req_of_task(prof, "T[8,9]") == 7
        assert mem_req_of_task(prof, "T[7,8]") == 9

    def test_dead_points_in_b(self, example):
        """'d3 is dead after task T[3,10], d5 is dead after T[5,10]'."""
        g, _, _ = example
        sb = schedule_b(g)
        prof = analyze_memory(sb)
        pos = {t: i for i, t in enumerate(sb.orders[1])}
        dead = prof.procs[1].dead_after
        assert "d3" in dead[pos["T[3,10]"]]
        assert "d5" in dead[pos["T[5,10]"]]

    def test_volatile_sharing_in_c(self, example):
        """In (c) the lifetimes of d7 and d3 are disjoint on P1."""
        g, _, _ = example
        prof = analyze_memory(schedule_c(g))
        span = prof.procs[1].span
        f3, l3 = span["d3"]
        f7, l7 = span["d7"]
        assert l3 < f7 or l7 < f3

    def test_schedules_are_gantt_valid(self, example):
        g, _, _ = example
        assert gantt(schedule_b(g)).makespan > 0
        assert gantt(schedule_c(g)).makespan > 0


class TestFigure3Maps:
    def test_map_narrative_under_capacity_8(self, example):
        """Figure 3(a): executing (c) with 8 units of memory adds a MAP
        right after T[5,10] on P1 that frees d3/d5 and allocates d7."""
        g, _, _ = example
        sc = schedule_c(g)
        plan = plan_maps(sc, 8)
        p1_maps = plan.points[1]
        assert len(p1_maps) == 2  # the initial MAP plus one more
        pos = {t: i for i, t in enumerate(sc.orders[1])}
        extra = p1_maps[1]
        assert extra.position == pos["T[5,10]"] + 1 == pos["T[7,8]"]
        assert set(extra.frees) >= {"d3", "d5"}
        assert "d7" in extra.allocs
        # The fresh d7 address goes to its owner P0.
        assert extra.notifications == {0: ["d7"]}

    def test_b_not_executable_under_8(self, example):
        g, _, _ = example
        with pytest.raises(NonExecutableScheduleError):
            plan_maps(schedule_b(g), 8)

    def test_c_not_executable_under_7(self, example):
        g, _, _ = example
        with pytest.raises(NonExecutableScheduleError):
            plan_maps(schedule_c(g), 7)


class TestFigure5DTS:
    def test_dcg_is_acyclic(self, example):
        g, _, _ = example
        assert build_dcg(g).is_acyclic()

    def test_slice_order_matches_paper(self, example):
        """Unique topological slice order d1,d3,d4,d5,d7,d8,d2."""
        g, _, _ = example
        dcg = build_dcg(g)
        slices = tuple(objs[0] for objs in dcg.comp_objects)
        assert slices == DCG_SLICE_ORDER

    def test_dts_min_mem_is_7(self, example):
        g, pl, asg = example
        sched = dts_order(g, pl, asg)
        assert analyze_memory(sched).min_mem == 7

    def test_theorem2_bound(self, example):
        """DTS MIN_MEM respects the Theorem 2 bound (perm + h)."""
        g, pl, asg = example
        bound = dts_space_bound(g, pl, asg)
        sched = dts_order(g, pl, asg)
        assert analyze_memory(sched).min_mem <= bound
        # Acyclic DCG with unit objects: h = 1 (Corollary 1).
        assert bound == 7

    def test_heuristic_progression(self, example):
        """Our own RCP/MPO/DTS orderings never use more memory than the
        paper's figures: RCP >= MPO >= DTS in MIN_MEM."""
        g, pl, asg = example
        mm = {
            fn.__name__: analyze_memory(fn(g, pl, asg)).min_mem
            for fn in (rcp_order, mpo_order, dts_order)
        }
        assert mm["rcp_order"] >= mm["mpo_order"] >= mm["dts_order"] == 7


class TestSimulatedExecution:
    @pytest.mark.parametrize("cap,expected_extra_maps", [(9, 0.0), (8, 0.5)])
    def test_unit_machine_execution(self, example, cap, expected_extra_maps):
        g, _, _ = example
        sc = schedule_c(g)
        res = simulate(sc, spec=UNIT_MACHINE, capacity=cap)
        assert res.peak_memory <= cap
        assert res.avg_maps == 1.0 + expected_extra_maps

    def test_memory_management_costs_time(self, example):
        g, _, _ = example
        sc = schedule_c(g)
        base = simulate(sc, spec=UNIT_MACHINE, memory_managed=False)
        tight = simulate(sc, spec=UNIT_MACHINE, capacity=8)
        assert tight.parallel_time >= base.parallel_time

    def test_non_executable_capacity(self, example):
        g, _, _ = example
        with pytest.raises(NonExecutableScheduleError):
            simulate(schedule_c(g), spec=UNIT_MACHINE, capacity=7)
