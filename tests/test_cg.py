"""Tests for the conjugate-gradient application."""

import numpy as np
import pytest

from repro.apps.cg import build_cg, cg_solve
from repro.core import analyze_memory, dts_order, mpo_order, rcp_order
from repro.core.placement import validate_owner_compute
from repro.graph.repeat import repeat_graph, repeat_schedule
from repro.machine import UNIT_MACHINE, simulate
from repro.sparse.matrices import grid_laplacian_2d, perturbed_grid_spd


@pytest.fixture(scope="module")
def prob():
    return build_cg(grid_laplacian_2d(8), block_size=16)


@pytest.fixture(scope="module")
def rhs(prob):
    return np.random.default_rng(1).normal(size=prob.n)


class TestGraph:
    def test_structure(self, prob):
        names = set(prob.graph.task_names)
        assert "RED_PQ" in names and "BETA" in names
        assert f"SPMV({prob.num_blocks - 1})" in names

    def test_spmv_reads_only_needed_segments(self, prob):
        for i in range(prob.num_blocks):
            t = prob.graph.task(f"SPMV({i})")
            segs = {int(r[2:-1]) for r in t.reads if r.startswith("p[")}
            assert segs == set(prob.needed[i])

    def test_owner_compute_consistent(self, prob):
        pl = prob.placement(3)
        asg = prob.assignment(pl)
        validate_owner_compute(prob.graph, pl, asg)

    def test_scalars_on_proc0(self, prob):
        pl = prob.placement(4)
        assert pl["alpha"] == 0 and pl["dot_rr"] == 0


class TestNumerics:
    def test_converges_to_solution(self, prob, rhs):
        res = cg_solve(prob, rhs, tol=1e-11)
        assert res.converged
        ref = np.linalg.solve(prob.a.toarray(), rhs)
        assert np.allclose(res.x, ref, atol=1e-7)

    def test_residuals_decrease(self, prob, rhs):
        res = cg_solve(prob, rhs, tol=1e-11)
        assert res.residuals[-1] < res.residuals[0]

    def test_nonconvergence_reported(self, prob, rhs):
        res = cg_solve(prob, rhs, tol=1e-14, max_iter=2)
        assert not res.converged

    @pytest.mark.parametrize("order_fn", [rcp_order, mpo_order, dts_order])
    def test_any_schedule_converges(self, prob, rhs, order_fn):
        pl = prob.placement(3)
        s = order_fn(prob.graph, pl, prob.assignment(pl))
        res = cg_solve(prob, rhs, schedule=s)
        assert res.converged
        ref = np.linalg.solve(prob.a.toarray(), rhs)
        assert np.allclose(res.x, ref, atol=1e-6)

    def test_bad_rhs_shape(self, prob):
        with pytest.raises(ValueError):
            prob.initial_store(np.zeros(3))

    def test_perturbed_matrix(self):
        a = perturbed_grid_spd(7, seed=4)
        p = build_cg(a, block_size=12)
        b = np.random.default_rng(2).normal(size=p.n)
        res = cg_solve(p, b, tol=1e-10, max_iter=300)
        assert res.converged


class TestExecution:
    def test_simulated_iteration(self, prob):
        pl = prob.placement(4)
        s = mpo_order(prob.graph, pl, prob.assignment(pl))
        pr = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=pr.min_mem, profile=pr)
        assert res.peak_memory <= pr.min_mem

    def test_unrolled_iterations_pipeline(self, prob):
        pl = prob.placement(4)
        s1 = mpo_order(prob.graph, pl, prob.assignment(pl))
        s3 = repeat_schedule(s1, 3)
        pr = analyze_memory(s3)
        res = simulate(s3, spec=UNIT_MACHINE, capacity=pr.min_mem, profile=pr)
        assert res.parallel_time > 0
        # memory does not grow with unrolling (recycled volatiles)
        assert pr.min_mem == analyze_memory(repeat_schedule(s1, 2)).min_mem

    def test_unrolled_numerics_match_loop(self, prob, rhs):
        """Executing the 3x-unrolled graph equals three loop iterations."""
        from repro.rapid.executor import execute_serial

        g3 = repeat_graph(prob.graph, 3)
        store = prob.initial_store(rhs)
        execute_serial(g3, store)
        loop_store = prob.initial_store(rhs)
        for _ in range(3):
            execute_serial(prob.graph, loop_store)
        assert np.allclose(prob.gather(store), prob.gather(loop_store))
