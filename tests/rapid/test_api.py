"""Unit and integration tests for the RAPID-style API."""

import pytest

from repro.core import Placement
from repro.errors import NonExecutableScheduleError, SchedulingError
from repro.machine.spec import UNIT_MACHINE
from repro.rapid import Rapid, parallelize
from repro.rapid.executor import execute_serial, global_order
from repro.rapid.inspector import HEURISTICS
from repro.graph.generators import random_trace


def small_session() -> Rapid:
    r = Rapid(spec=UNIT_MACHINE)
    r.object("x", 4)
    r.object("y", 4)
    r.object("z", 4)
    r.task("px", writes=["x"], weight=1.0)
    r.task("py", writes=["y"], weight=1.0)
    r.task("c", reads=["x", "y"], writes=["z"], weight=2.0)
    return r


class TestSession:
    def test_graph_derivation(self):
        r = small_session()
        g = r.graph
        assert g.has_edge("px", "c") and g.has_edge("py", "c")

    def test_parallelize_returns_program(self):
        prog = small_session().parallelize(2)
        assert prog.schedule.num_procs == 2
        assert prog.min_mem <= prog.tot

    def test_predicted_time(self):
        prog = small_session().parallelize(2)
        assert prog.predicted_time() >= 2.0

    def test_run(self):
        prog = small_session().parallelize(2)
        res = prog.run(capacity=prog.min_mem)
        assert res.parallel_time > 0
        assert res.peak_memory <= prog.min_mem

    def test_run_baseline(self):
        prog = small_session().parallelize(2)
        res = prog.run(memory_managed=False)
        assert not res.memory_managed

    def test_run_non_executable(self):
        prog = small_session().parallelize(2)
        if prog.min_mem > 0:
            with pytest.raises(NonExecutableScheduleError):
                prog.run(capacity=prog.min_mem - 1)

    def test_run_numeric_kernels(self):
        r = Rapid(spec=UNIT_MACHINE)
        r.object("a", 8)
        r.object("b", 8)
        r.task("w", writes=["a"], kernel=lambda s: s.__setitem__("a", 21))
        r.task(
            "d",
            reads=["a"],
            writes=["b"],
            kernel=lambda s: s.__setitem__("b", s["a"] * 2),
        )
        prog = r.parallelize(2)
        store = prog.run_numeric({})
        assert store["b"] == 42

    def test_plan(self):
        prog = small_session().parallelize(2)
        plan = prog.plan(prog.tot)
        assert plan.avg_maps >= 1.0

    def test_docstring_example(self):
        r = Rapid()
        r.object("x", size=8)
        r.object("y", size=8)
        r.task("produce", writes=["x"], weight=1.0)
        r.task("consume", reads=["x"], writes=["y"], weight=2.0)
        prog = r.parallelize(num_procs=2, heuristic="mpo")
        result = prog.run(capacity=prog.min_mem)
        assert result.parallel_time > 0


class TestInspector:
    def test_all_heuristics(self):
        g = random_trace(40, 8, seed=2)
        for h in HEURISTICS:
            s = parallelize(g, 3, heuristic=h, capacity=10**9)
            s.validate()

    def test_unknown_heuristic(self):
        g = random_trace(10, 4, seed=0)
        with pytest.raises(SchedulingError):
            parallelize(g, 2, heuristic="banana")

    def test_dts_merge_needs_capacity(self):
        g = random_trace(10, 4, seed=0)
        with pytest.raises(SchedulingError):
            parallelize(g, 2, heuristic="dts-merge")

    def test_dsc_clustering(self):
        g = random_trace(40, 8, seed=3)
        s = parallelize(g, 3, clustering="dsc")
        s.validate()

    def test_unknown_clustering(self):
        g = random_trace(10, 4, seed=0)
        with pytest.raises(SchedulingError):
            parallelize(g, 2, clustering="magic")

    def test_placement_mismatch(self):
        g = random_trace(10, 4, seed=0)
        pl = Placement(3, {o.name: 0 for o in g.objects()})
        with pytest.raises(SchedulingError):
            parallelize(g, 2, placement=pl)


class TestExecutor:
    def test_global_order_is_topological(self):
        g = random_trace(50, 10, seed=1)
        s = parallelize(g, 3)
        order = global_order(s)
        pos = {t: i for i, t in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]
        # per-processor order preserved
        for proc_order in s.orders:
            idxs = [pos[t] for t in proc_order]
            assert idxs == sorted(idxs)

    def test_execute_serial_wrong_order_length(self):
        g = random_trace(10, 4, seed=0)
        with pytest.raises(SchedulingError):
            execute_serial(g, {}, order=g.task_names[:3])
