"""Tests for iterative execution, state-time accounting and the CLI."""

import pytest

from repro.cli import main
from repro.machine.spec import CRAY_T3D, UNIT_MACHINE
from repro.machine.simulator import Simulator
from repro.rapid import Rapid


def pipeline_session(spec=CRAY_T3D) -> Rapid:
    r = Rapid(spec=spec)
    for i in range(6):
        r.object(f"d{i}", 64)
    r.task("t0", writes=["d0"], weight=1e-4)
    r.task("t1", writes=["d1"], weight=1e-4)
    r.task("t2", reads=["d0", "d1"], writes=["d2"], weight=2e-4)
    r.task("t3", reads=["d2"], writes=["d3"], weight=1e-4)
    r.task("t4", reads=["d2"], writes=["d4"], weight=1e-4)
    r.task("t5", reads=["d3", "d4"], writes=["d5"], weight=1e-4)
    return r


class TestIterative:
    def test_first_iteration_pays_more(self):
        prog = pipeline_session().parallelize(2)
        it = prog.run_iterative(5, capacity=prog.min_mem)
        assert it.first.parallel_time >= it.steady.parallel_time
        assert it.first_iteration_overhead >= 0

    def test_total_and_amortized(self):
        prog = pipeline_session().parallelize(2)
        it = prog.run_iterative(4, capacity=prog.min_mem)
        expect = it.first.parallel_time + 3 * it.steady.parallel_time
        assert it.total_time == pytest.approx(expect)
        assert it.amortized_time == pytest.approx(expect / 4)

    def test_single_iteration(self):
        prog = pipeline_session().parallelize(2)
        it = prog.run_iterative(1, capacity=prog.min_mem)
        assert it.total_time == it.first.parallel_time

    def test_bad_iterations(self):
        prog = pipeline_session().parallelize(2)
        with pytest.raises(ValueError):
            prog.run_iterative(0)

    def test_steady_state_sends_no_packages(self):
        prog = pipeline_session().parallelize(2)
        res = Simulator(
            prog.schedule,
            spec=CRAY_T3D,
            capacity=prog.min_mem,
            profile=prog.profile,
            preknown_addresses=True,
        ).run()
        assert sum(s.packages_sent for s in res.stats) == 0
        assert sum(s.suspended_sends for s in res.stats) == 0

    def test_amortization_approaches_steady(self):
        prog = pipeline_session().parallelize(2)
        it_small = prog.run_iterative(2, capacity=prog.min_mem)
        it_big = prog.run_iterative(100, capacity=prog.min_mem)
        assert it_big.amortized_time <= it_small.amortized_time
        assert it_big.amortized_time == pytest.approx(
            it_big.steady.parallel_time, rel=0.05
        )


class TestStateAccounting:
    def test_time_decomposition(self):
        prog = pipeline_session().parallelize(2)
        res = prog.run(capacity=prog.min_mem)
        for s in res.stats:
            assert s.idle_time >= 0
            total = s.busy_time + s.overhead_time + s.idle_time
            assert total == pytest.approx(s.finish_time, abs=1e-12)

    def test_overhead_zero_on_unit_machine(self):
        prog = pipeline_session(spec=UNIT_MACHINE).parallelize(2)
        res = prog.run(capacity=prog.min_mem)
        assert all(s.overhead_time == 0 for s in res.stats)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "figure7" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "MIN_MEM Fig2(b) = 9" in out
        assert "d1 -> d3 -> d4 -> d5 -> d7 -> d8 -> d2" in out

    def test_table1_restricted(self, capsys):
        assert main(["table1", "--procs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure7_one_app(self, capsys):
        assert main(["figure7", "--app", "lu", "--procs", "2", "4"]) == 0
        assert "Figure 7 (lu)" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert main(["tableX"]) == 2

    def test_svg_output(self, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        assert main(["svg", "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.svg"))
        assert len(files) == 6
        for f in files:
            ET.parse(f)  # well-formed

    def test_list_includes_svg(self, capsys):
        main(["list"])
        assert "svg" in capsys.readouterr().out
