"""Documentation must not lie: execute every tutorial code block and
spot-check that names referenced in the docs exist."""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"
ROOT = pathlib.Path(__file__).parent.parent


class TestTutorialRuns:
    def test_all_python_blocks_execute(self):
        text = (DOCS / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 5
        ns: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"<tutorial block {i}>", "exec"), ns)


class TestDocNamesExist:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.core", ["analyze_memory", "plan_maps", "dts_order", "etf_schedule",
                            "gantt_svg", "dependence_memory_report"]),
            ("repro.machine", ["CRAY_T3D", "MEIKO_CS2", "Simulator", "TraceEvent"]),
            ("repro.rapid", ["Rapid", "ParallelProgram", "IterativeResult"]),
            ("repro.sparse", ["build_cholesky", "build_lu", "build_trisolve",
                              "cholesky_solve", "supernode_partition"]),
            ("repro.apps", ["BratuProblem", "newton_solve", "build_cg", "cg_solve"]),
            ("repro.graph", ["repeat_graph", "rename_versions", "classic"]),
            ("repro.experiments", ["full_sweep", "to_csv", "table2", "run_figure7"]),
            ("repro.obs", ["Instrument", "MetricsSuite", "build_metrics",
                           "chrome_trace", "html_report", "TraceLog"]),
        ],
    )
    def test_api_reference_names(self, module, names):
        import importlib

        mod = importlib.import_module(module)
        for n in names:
            assert hasattr(mod, n), f"{module}.{n} referenced in docs but missing"

    def test_doc_files_exist(self):
        for f in ("PROTOCOL.md", "TUTORIAL.md", "API.md", "observability.md"):
            assert (DOCS / f).exists()
        for f in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / f).exists()
