"""Unit tests for DCG construction and DTS ordering (section 4.2)."""

import pytest

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    gantt,
    owner_compute_assignment,
)
from repro.core.dcg import build_dcg, slice_volatile_space, task_association
from repro.core.dts import dts_space_bound, merge_slices
from repro.errors import SchedulingError
from repro.graph import GraphBuilder
from repro.graph.generators import chain, random_trace
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)


class TestAssociation:
    def g(self):
        b = GraphBuilder(materialize_inputs=False)
        for o in ("a", "b", "c"):
            b.add_object(o)
        b.add_task("producer", writes=("a",))
        b.add_task("reader", reads=("a",), writes=("b",))
        b.add_task("rmw", reads=("c",), writes=("c",))
        b.add_task("multi", reads=("a", "b"), writes=("c",))
        return b.build()

    def test_pure_producer_assoc_with_written(self):
        g = self.g()
        assert task_association(g, "producer") == ("a",)

    def test_reader_assoc_with_read(self):
        g = self.g()
        assert task_association(g, "reader") == ("a",)

    def test_rmw_single_object(self):
        g = self.g()
        assert task_association(g, "rmw") == ("c",)

    def test_multi_read_assoc(self):
        g = self.g()
        assert set(task_association(g, "multi")) == {"a", "b"}


class TestDCG:
    def test_multi_assoc_nodes_strongly_connected(self):
        b = GraphBuilder(materialize_inputs=False)
        for o in ("a", "b", "c"):
            b.add_object(o)
        b.add_task("wa", writes=("a",))
        b.add_task("wb", writes=("b",))
        b.add_task("m", reads=("a", "b"), writes=("c",))
        dcg = build_dcg(b.build())
        # a and b are in the same SCC (the doubly-directed edge rule).
        assert dcg.component["a"] == dcg.component["b"]
        assert not dcg.is_acyclic()

    def test_chain_graph_dcg(self):
        g = chain(4)
        dcg = build_dcg(g)
        assert dcg.is_acyclic()
        # one slice per object with tasks, in chain order
        orders = [objs[0] for objs in dcg.comp_objects]
        assert orders == sorted(orders, key=lambda o: int(o[1:]))

    def test_each_task_in_one_slice(self):
        g = random_trace(60, 12, seed=3)
        dcg = build_dcg(g)
        sliced = [t for tasks in dcg.comp_tasks for t in tasks]
        assert sorted(sliced) == sorted(g.task_names)

    def test_paper_example_unique_order(self):
        dcg = build_dcg(paper_example_graph())
        assert [o[0] for o in dcg.comp_objects] == list(
            ("d1", "d3", "d4", "d5", "d7", "d8", "d2")
        )

    def test_slice_volatile_space(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        dcg = build_dcg(g)
        h = slice_volatile_space(dcg, pl, asg)
        # unit objects and acyclic DCG: every slice needs at most one
        # volatile object per processor.
        assert max(h) == 1


class TestMergeSlices:
    def test_all_fit(self):
        assert merge_slices([1, 1, 1], avail_volatile=10) == [0, 0, 0]

    def test_none_fit_together(self):
        assert merge_slices([5, 5, 5], avail_volatile=6) == [0, 1, 2]

    def test_partial(self):
        assert merge_slices([2, 2, 2, 2], avail_volatile=5) == [0, 0, 1, 1]

    def test_empty(self):
        assert merge_slices([], 10) == []

    def test_figure6_semantics(self):
        """space_req resets to H(L_i) on overflow (Figure 6 lines 8-10):
        after [3,3] fills the budget of 6, slice 2 starts fresh with
        req=1 and slice 3 merges into it (1+3 <= 6)."""
        assert merge_slices([3, 3, 1, 3], avail_volatile=6) == [0, 0, 1, 1]

    def test_over_budget_slice_raises(self):
        """A single slice above the budget can never execute; merging
        must fail loudly instead of emitting a non-executable slicing."""
        with pytest.raises(SchedulingError):
            merge_slices([3, 9, 3], avail_volatile=6)

    def test_non_positive_budget_raises(self):
        with pytest.raises(SchedulingError):
            merge_slices([1, 2], avail_volatile=0)
        with pytest.raises(SchedulingError):
            merge_slices([1, 2], avail_volatile=-4)

    def test_dts_order_falls_back_to_unmerged(self):
        """dts_order with a capacity too small for merging degrades to
        plain DTS instead of raising (downstream MIN_MEM checks decide
        executability)."""
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        plain = dts_order(g, pl, asg)
        tiny = dts_order(g, pl, asg, avail_mem=1)
        assert tiny.meta["heuristic"] == "DTS"
        assert tiny.orders == plain.orders


class TestDeterminism:
    def test_dts_order_is_hash_seed_independent(self):
        """The DCG condensation (and hence the DTS slice order) must not
        depend on the interpreter's string hash seed — sweeps have to be
        reproducible across invocations and worker processes."""
        import os
        import subprocess
        import sys

        prog = (
            "from repro.graph.generators import random_trace\n"
            "from repro.core import cyclic_placement, dts_order, "
            "owner_compute_assignment\n"
            "g = random_trace(60, 12, seed=3)\n"
            "pl = cyclic_placement(g, 3)\n"
            "s = dts_order(g, pl, owner_compute_assignment(g, pl))\n"
            "print(repr(s.orders))\n"
        )
        outs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True, text=True, check=True, env=env,
            ).stdout
            outs.add(out)
        assert len(outs) == 1


class TestDTS:
    def test_slice_major_execution(self):
        """On each processor, slice indices are non-decreasing."""
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        dcg = build_dcg(g)
        slice_of = dcg.slice_of()
        s = dts_order(g, pl, asg, dcg=dcg)
        for order in s.orders:
            indices = [slice_of[t] for t in order]
            assert indices == sorted(indices)

    def test_theorem2_bound_random(self):
        for seed in range(8):
            g = random_trace(60, 10, seed=seed)
            pl = cyclic_placement(g, 3)
            asg = owner_compute_assignment(g, pl)
            s = dts_order(g, pl, asg)
            assert analyze_memory(s).min_mem <= dts_space_bound(g, pl, asg)

    def test_merging_reduces_or_keeps_slices(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        plain = dts_order(g, pl, asg)
        merged = dts_order(g, pl, asg, avail_mem=9)
        assert merged.meta["num_slices"] <= plain.meta["num_slices"]

    def test_merged_still_executable_under_budget(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        for cap in (7, 8, 9, 11):
            merged = dts_order(g, pl, asg, avail_mem=cap)
            assert analyze_memory(merged).min_mem <= cap

    def test_merging_helps_time(self):
        """With ample memory, merged DTS should not be slower than plain
        DTS (more critical-path freedom)."""
        g = random_trace(80, 15, seed=4)
        pl = cyclic_placement(g, 4)
        asg = owner_compute_assignment(g, pl)
        plain = gantt(dts_order(g, pl, asg)).makespan
        merged = gantt(dts_order(g, pl, asg, avail_mem=10**9)).makespan
        assert merged <= plain * 1.05

    def test_meta(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        s = dts_order(g, pl, asg)
        assert s.meta["heuristic"] == "DTS"
        assert s.meta["dcg_acyclic"] is True
        s2 = dts_order(g, pl, asg, avail_mem=8)
        assert s2.meta["heuristic"] == "DTS+merge"
