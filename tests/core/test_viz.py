"""Tests for the SVG renderers (well-formedness and content)."""

import xml.etree.ElementTree as ET

from repro.core import analyze_memory, gantt, mpo_order
from repro.core.viz import gantt_svg, memory_svg
from repro.graph.generators import random_trace
from repro.core import cyclic_placement, owner_compute_assignment


def setup():
    g = random_trace(30, 6, seed=3)
    pl = cyclic_placement(g, 3)
    asg = owner_compute_assignment(g, pl)
    s = mpo_order(g, pl, asg)
    return g, s


SVG_NS = "{http://www.w3.org/2000/svg}"


class TestGanttSVG:
    def test_well_formed(self):
        g, s = setup()
        doc = gantt_svg(gantt(s))
        root = ET.fromstring(doc)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_task(self):
        g, s = setup()
        doc = gantt_svg(gantt(s))
        root = ET.fromstring(doc)
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == g.num_tasks

    def test_labels_optional(self):
        g, s = setup()
        plain = gantt_svg(gantt(s), label_tasks=False)
        labeled = gantt_svg(gantt(s), label_tasks=True)
        assert len(labeled) >= len(plain)

    def test_file_output(self, tmp_path):
        g, s = setup()
        out = tmp_path / "gantt.svg"
        gantt_svg(gantt(s), path=str(out))
        assert out.exists()
        ET.parse(out)

    def test_tooltip_titles(self):
        g, s = setup()
        root = ET.fromstring(gantt_svg(gantt(s)))
        titles = root.findall(f".//{SVG_NS}title")
        assert len(titles) == g.num_tasks


class TestMemorySVG:
    def test_well_formed(self):
        g, s = setup()
        doc = memory_svg(analyze_memory(s))
        ET.fromstring(doc)

    def test_one_polyline_per_busy_proc(self):
        g, s = setup()
        prof = analyze_memory(s)
        root = ET.fromstring(memory_svg(prof))
        polys = root.findall(f".//{SVG_NS}polyline")
        busy = sum(1 for pp in prof.procs if pp.mem_req)
        assert len(polys) == busy

    def test_capacity_rule(self):
        g, s = setup()
        prof = analyze_memory(s)
        doc = memory_svg(prof, capacity=prof.tot)
        assert "capacity" in doc and "MIN_MEM" in doc

    def test_file_output(self, tmp_path):
        g, s = setup()
        out = tmp_path / "mem.svg"
        memory_svg(analyze_memory(s), path=str(out))
        ET.parse(out)
