"""Unit tests for the RCP / MPO ordering heuristics and the shared
list-scheduling engine."""

import pytest

from repro.core import (
    CommModel,
    analyze_memory,
    cyclic_placement,
    gantt,
    mpo_order,
    owner_compute_assignment,
    rcp_order,
    rcp_priorities,
)
from repro.core.listsched import StaticPolicy, run_list_scheduler
from repro.core.mpo import MemoryPriorityPolicy
from repro.errors import SchedulingError
from repro.graph.generators import chain, fork_join, layered_random, random_trace
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)


def setup(g, p):
    pl = cyclic_placement(g, p)
    asg = owner_compute_assignment(g, pl)
    return pl, asg


class TestEngine:
    def test_orders_are_topological(self):
        g = random_trace(60, 12, seed=1)
        pl, asg = setup(g, 3)
        s = rcp_order(g, pl, asg)
        pos = s.position()
        # every dependence edge must respect processor-local positions
        for u, v, _ in g.edges():
            if asg[u] == asg[v]:
                assert pos[u] < pos[v]

    def test_gantt_valid_for_all(self):
        g = random_trace(60, 12, seed=2)
        pl, asg = setup(g, 4)
        for fn in (rcp_order, mpo_order):
            assert gantt(fn(g, pl, asg)).makespan > 0

    def test_missing_assignment(self):
        g = chain(3)
        pl = cyclic_placement(g, 2)
        with pytest.raises(SchedulingError):
            run_list_scheduler(g, pl, {"T0": 0}, StaticPolicy({"T0": 1.0}))

    def test_static_policy_priority_order(self):
        """Higher priority runs first among simultaneously ready tasks."""
        g = fork_join(1, 3)
        pl = cyclic_placement(g, 1, order=sorted(o.name for o in g.objects()))
        asg = {t: 0 for t in g.task_names}
        prio = {"fork0": 10.0, "mid0_0": 1.0, "mid0_1": 3.0, "mid0_2": 2.0, "join0": 5.0}
        s = run_list_scheduler(g, pl, asg, StaticPolicy(prio))
        order = s.orders[0]
        assert order.index("mid0_1") < order.index("mid0_2") < order.index("mid0_0")

    def test_meta_recorded(self):
        g = chain(3)
        pl, asg = setup(g, 2)
        assert rcp_order(g, pl, asg).meta["heuristic"] == "RCP"
        assert mpo_order(g, pl, asg).meta["heuristic"] == "MPO"


class TestRCP:
    def test_priorities_include_cross_comm(self):
        """The paper's example: blevel(T[7,8]) = 4 with unit costs."""
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        prio = rcp_priorities(g, asg, CommModel(latency=1.0))
        # T[7,8] -> T[8] (same proc) -> T[8,9] (cross): 1+1+1+1 = 4.
        assert prio["T[7,8]"] == 4.0

    def test_chain_is_sequential(self):
        g = chain(5)
        pl, asg = setup(g, 2)
        s = rcp_order(g, pl, asg)
        assert gantt(s).makespan >= 5.0

    def test_time_efficiency_vs_arbitrary(self):
        """RCP should not be slower than a naive topological order."""
        from repro.core import Schedule

        g = layered_random(8, 6, seed=3)
        pl, asg = setup(g, 4)
        rcp = gantt(rcp_order(g, pl, asg)).makespan
        orders = [[], [], [], []]
        for t in g.topological_order():
            orders[asg[t]].append(t)
        naive = gantt(Schedule(g, pl, asg, orders)).makespan
        assert rcp <= naive * 1.10  # allow small slack


class TestMPO:
    def test_memory_no_worse_than_rcp_on_paper_example(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        m_rcp = analyze_memory(rcp_order(g, pl, asg)).min_mem
        m_mpo = analyze_memory(mpo_order(g, pl, asg)).min_mem
        assert m_mpo <= m_rcp

    def test_policy_ratio(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        cp = rcp_priorities(g, asg)
        pol = MemoryPriorityPolicy(g, pl, asg, cp)
        # T[7,8] on P1: d8 permanent (have), d7 volatile unallocated.
        assert pol.memory_priority("T[7,8]") == pytest.approx(0.5)
        # T[8] on P1 writes only permanent d8.
        assert pol.memory_priority("T[8]") == pytest.approx(1.0)

    def test_policy_updates_on_allocation(self):
        g = paper_example_graph()
        pl = paper_placement()
        asg = paper_assignment(g, pl)
        pol = MemoryPriorityPolicy(g, pl, asg, rcp_priorities(g, asg))
        # Scheduling T[7,10] on P1 allocates volatile d7.
        changed = pol.on_scheduled("T[7,10]", 1)
        assert "T[7,8]" in changed
        assert pol.memory_priority("T[7,8]") == pytest.approx(1.0)

    def test_mean_memory_reduction_on_random_graphs(self):
        """Across seeds, MPO's MIN_MEM is on average <= RCP's (the
        Figure 7 trend)."""
        wins = ties = losses = 0
        for seed in range(12):
            g = random_trace(80, 16, seed=seed)
            pl, asg = setup(g, 4)
            r = analyze_memory(rcp_order(g, pl, asg)).min_mem
            m = analyze_memory(mpo_order(g, pl, asg)).min_mem
            if m < r:
                wins += 1
            elif m == r:
                ties += 1
            else:
                losses += 1
        assert wins + ties > losses
