"""Tests for the ETF dynamic-scheduling baseline."""

from repro.core import analyze_memory, gantt, mpo_order, owner_compute_assignment
from repro.core.dynamic import etf_schedule
from repro.core.placement import validate_owner_compute
from repro.graph.generators import chain, fork_join, random_trace
from repro.machine import UNIT_MACHINE, simulate


class TestETF:
    def test_valid_schedule(self):
        g = random_trace(40, 8, seed=1)
        s = etf_schedule(g, 3)
        s.validate()
        assert gantt(s).makespan > 0

    def test_writers_colocated(self):
        g = random_trace(60, 10, seed=2)
        s = etf_schedule(g, 4)
        validate_owner_compute(g, s.placement, s.assignment)

    def test_chain_stays_on_one_processor(self):
        g = chain(6)
        s = etf_schedule(g, 3)
        assert len({s.assignment[t] for t in g.task_names}) == 1

    def test_uses_parallelism(self):
        g = fork_join(2, 6, weight=3.0)
        serial = g.total_work()
        assert gantt(etf_schedule(g, 4)).makespan < serial

    def test_meta(self):
        g = chain(3)
        assert etf_schedule(g, 2).meta["heuristic"] == "ETF-dynamic"

    def test_simulatable(self):
        g = random_trace(50, 9, seed=4)
        s = etf_schedule(g, 3)
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.peak_memory <= prof.min_mem

    def test_memory_oblivious_on_average(self):
        """The related-work argument: the time-greedy dynamic baseline
        tends to need at least as much memory as MPO."""
        worse = better = 0
        for seed in range(8):
            g = random_trace(60, 10, seed=seed)
            s_dyn = etf_schedule(g, 4)
            m_dyn = analyze_memory(s_dyn).min_mem / max(analyze_memory(s_dyn).s1, 1)
            pl = s_dyn.placement
            asg = owner_compute_assignment(g, pl)
            m_mpo = analyze_memory(mpo_order(g, pl, asg)).min_mem / max(
                analyze_memory(s_dyn).s1, 1
            )
            if m_dyn >= m_mpo:
                worse += 1
            else:
                better += 1
        assert worse >= better
