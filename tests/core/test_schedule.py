"""Unit tests for Schedule and Gantt prediction."""

import pytest

from repro.core import (
    CommModel,
    Schedule,
    cyclic_placement,
    gantt,
    owner_compute_assignment,
    serial_schedule,
)
from repro.core.placement import placement_from_dict
from repro.errors import SchedulingError
from repro.graph.generators import chain, fork_join


def two_proc_chain():
    """T0 -> T1 -> T2 with alternating ownership."""
    g = chain(3)
    pl = cyclic_placement(g, 2, order=["d0", "d1", "d2"])
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


class TestCommModel:
    def test_cost(self):
        cm = CommModel(latency=2.0, byte_time=0.5)
        assert cm.cost(4) == pytest.approx(4.0)

    def test_unit_default(self):
        cm = CommModel()
        assert cm.cost(100) == 1.0


class TestScheduleValidation:
    def test_valid(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1"]])
        s.validate()

    def test_missing_task(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0"], ["T1"]])
        with pytest.raises(SchedulingError):
            s.validate()

    def test_duplicate_task(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1", "T2"]])
        with pytest.raises(SchedulingError):
            s.validate()

    def test_wrong_processor(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T1", "T2"], []])
        with pytest.raises(SchedulingError):
            s.validate()

    def test_orders_count_mismatch(self):
        g, pl, asg = two_proc_chain()
        with pytest.raises(SchedulingError):
            Schedule(g, pl, asg, [["T0", "T2", "T1"]])

    def test_position(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1"]])
        assert s.position() == {"T0": 0, "T2": 1, "T1": 0}


class TestGantt:
    def test_serial_chain(self):
        g = chain(3)
        s = serial_schedule(g)
        ch = gantt(s)
        assert ch.makespan == 3.0
        assert ch.start["T0"] == 0 and ch.start["T2"] == 2

    def test_cross_processor_comm_delay(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1"]])
        ch = gantt(s)  # unit comm
        # T0: [0,1]; T1 starts at 2 (1 + comm); T2 at 4.
        assert ch.start["T1"] == 2.0
        assert ch.start["T2"] == 4.0
        assert ch.makespan == 5.0

    def test_same_proc_no_comm(self):
        g = chain(3)
        pl = placement_from_dict(1, {f"d{i}": 0 for i in range(3)})
        asg = owner_compute_assignment(g, pl)
        ch = gantt(Schedule(g, pl, asg, [["T0", "T1", "T2"]]))
        assert ch.makespan == 3.0

    def test_invalid_interleaving_detected(self):
        g = chain(3)
        pl = placement_from_dict(1, {f"d{i}": 0 for i in range(3)})
        asg = owner_compute_assignment(g, pl)
        s = Schedule(g, pl, asg, [["T1", "T0", "T2"]])
        with pytest.raises(SchedulingError):
            gantt(s)

    def test_parallel_speedup(self):
        g = fork_join(1, 4)
        pl = cyclic_placement(g, 2)
        asg = owner_compute_assignment(g, pl)
        from repro.core import rcp_order

        s = rcp_order(g, pl, asg)
        ch = gantt(s)
        assert ch.makespan < g.total_work()

    def test_busy_and_utilization(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1"]])
        ch = gantt(s)
        assert ch.busy_time(0) == 2.0
        assert 0 < ch.utilization() <= 1.0

    def test_ascii_render(self):
        g, pl, asg = two_proc_chain()
        s = Schedule(g, pl, asg, [["T0", "T2"], ["T1"]])
        art = gantt(s).as_ascii()
        assert "P0:" in art and "PT = 5" in art
