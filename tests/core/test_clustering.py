"""Unit tests for DSC clustering and LPT mapping."""

from repro.core import gantt, serial_schedule
from repro.core.clustering import (
    colocate_writers,
    dsc_cluster,
    dsc_map,
    lpt_map_clusters,
)
from repro.core.placement import validate_owner_compute
from repro.core.rcp import rcp_order
from repro.graph import GraphBuilder
from repro.graph.generators import chain, fork_join, layered_random


class TestDSC:
    def test_chain_collapses_to_one_cluster(self):
        """Zeroing every edge of a chain is always beneficial."""
        g = chain(6)
        clusters = dsc_cluster(g)
        assert len(set(clusters)) == 1

    def test_independent_tasks_stay_apart(self):
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a")
        b.add_object("b")
        b.add_task("t1", writes=("a",), weight=5)
        b.add_task("t2", writes=("b",), weight=5)
        g = b.build()
        clusters = dsc_cluster(g)
        assert clusters[0] != clusters[1]

    def test_deterministic(self):
        g = layered_random(5, 5, seed=8)
        assert dsc_cluster(g) == dsc_cluster(g)

    def test_dense_ids(self):
        g = fork_join(2, 3)
        clusters = dsc_cluster(g)
        assert set(clusters) == set(range(max(clusters) + 1))


class TestColocateWriters:
    def test_writers_merged(self):
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a")
        b.add_object("x")
        b.add_object("y")
        b.add_task("w1", writes=("a",))
        b.add_task("rx", reads=("a",), writes=("x",))
        b.add_task("w2", reads=("x",), writes=("a",))
        g = b.build()
        clusters = [0, 1, 2]  # w1 and w2 in different clusters
        merged = colocate_writers(g, clusters)
        idx = {t: i for i, t in enumerate(g.task_names)}
        assert merged[idx["w1"]] == merged[idx["w2"]]


class TestLPT:
    def test_balances_load(self):
        b = GraphBuilder(materialize_inputs=False)
        for i in range(4):
            b.add_object(f"o{i}")
            b.add_task(f"t{i}", writes=(f"o{i}",), weight=float(i + 1))
        g = b.build()
        asg = lpt_map_clusters(g, [0, 1, 2, 3], 2)
        loads = [0.0, 0.0]
        for t in g.tasks():
            loads[asg[t.name]] += t.weight
        assert abs(loads[0] - loads[1]) <= 1.0


class TestDscMap:
    def test_owner_compute_invariant(self):
        g = layered_random(6, 6, seed=2)
        asg, pl = dsc_map(g, 4)
        validate_owner_compute(g, pl, asg)

    def test_end_to_end_speedup(self):
        """DSC mapping + RCP ordering beats a serial run on a wide DAG."""
        g = fork_join(3, 8, weight=4.0)
        asg, pl = dsc_map(g, 4)
        s = rcp_order(g, pl, asg)
        assert gantt(s).makespan < gantt(serial_schedule(g)).makespan
