"""Unit tests for the memory model (Definitions 4-6)."""

import pytest

from repro.core import (
    Schedule,
    analyze_memory,
    mem_req_of_task,
    min_mem,
    owner_compute_assignment,
)
from repro.core.placement import placement_from_dict
from repro.errors import NonExecutableScheduleError
from repro.graph import GraphBuilder


def volatile_graph():
    """P0 produces a, b, c (owned); P1 reads them into volatiles."""
    b = GraphBuilder(materialize_inputs=False)
    for o, s in (("a", 2), ("b", 3), ("c", 4), ("x", 1), ("y", 1), ("z", 1)):
        b.add_object(o, s)
    b.add_task("wa", writes=("a",))
    b.add_task("wb", writes=("b",))
    b.add_task("wc", writes=("c",))
    b.add_task("ra", reads=("a",), writes=("x",))
    b.add_task("rb", reads=("b",), writes=("y",))
    b.add_task("rc", reads=("c",), writes=("z",))
    g = b.build()
    pl = placement_from_dict(
        2, {"a": 0, "b": 0, "c": 0, "x": 1, "y": 1, "z": 1}
    )
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


class TestLiveness:
    def test_disjoint_lifetimes_share_space(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        # P1 perm = x+y+z = 3; volatiles a(2), b(3), c(4) each alive at
        # exactly one task -> peak = 3 + 4 = 7.
        assert prof.procs[1].min_mem == 7
        assert prof.procs[1].tot == 3 + 9

    def test_spans(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        assert prof.procs[1].span == {"a": (0, 0), "b": (1, 1), "c": (2, 2)}

    def test_dead_after(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        assert prof.procs[1].dead_after == {0: ["a"], 1: ["b"], 2: ["c"]}

    def test_overlapping_lifetime(self):
        """Interleaving accesses keeps volatiles alive simultaneously."""
        b = GraphBuilder(materialize_inputs=False)
        for o in ("a", "b", "x", "y", "u", "v"):
            b.add_object(o, 1)
        b.add_task("wa", writes=("a",))
        b.add_task("wb", writes=("b",))
        b.add_task("r1", reads=("a",), writes=("x",))
        b.add_task("r2", reads=("b",), writes=("y",))
        b.add_task("r3", reads=("a",), writes=("u",))
        b.add_task("r4", reads=("b",), writes=("v",))
        g = b.build()
        pl = placement_from_dict(2, {"a": 0, "b": 0, "x": 1, "y": 1, "u": 1, "v": 1})
        asg = owner_compute_assignment(g, pl)
        s = Schedule(g, pl, asg, [["wa", "wb"], ["r1", "r2", "r3", "r4"]])
        prof = analyze_memory(s)
        # a alive 0..2, b alive 1..3 -> both alive at 1 and 2.
        assert prof.procs[1].min_mem == 4 + 2  # perm 4 + two volatiles

    def test_mem_req_per_task(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        assert mem_req_of_task(prof, "rc") == 3 + 4
        assert mem_req_of_task(prof, "wa") == 2 + 3 + 4  # P0 perm only

    def test_min_mem_helper(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        assert min_mem(s) == max(9, 7)

    def test_executability(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        assert prof.executable_under(prof.min_mem)
        assert not prof.executable_under(prof.min_mem - 1)
        with pytest.raises(NonExecutableScheduleError):
            prof.require_executable(prof.min_mem - 1)

    def test_s1(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        assert analyze_memory(s).s1 == 12

    def test_ratio_and_scalability_metrics(self):
        g, pl, asg = volatile_graph()
        s = Schedule(g, pl, asg, [["wa", "wb", "wc"], ["ra", "rb", "rc"]])
        prof = analyze_memory(s)
        # Table-1 style ratio (no recycling): mean((9, 12) / 6).
        assert prof.usage_ratio_vs_ideal(recycling=False) == pytest.approx(
            ((9 / 6) + (12 / 6)) / 2
        )
        # Figure-7 style scalability: S1 / max peak = 12 / 9.
        assert prof.memory_scalability() == pytest.approx(12 / 9)

    def test_no_volatiles_on_serial(self):
        from repro.core import serial_schedule
        from repro.graph.generators import chain

        g = chain(4)
        prof = analyze_memory(serial_schedule(g))
        assert prof.procs[0].vola_bytes == 0
        assert prof.min_mem == prof.s1
