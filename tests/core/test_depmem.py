"""Unit tests for dependence-structure memory accounting."""


from repro.core import cyclic_placement, mpo_order, owner_compute_assignment
from repro.core.depmem import (
    RecordSizes,
    dependence_memory_report,
    distributed_dependence_memory,
    replicated_dependence_memory,
)
from repro.graph.generators import chain, random_trace


def sched(g, p):
    pl = cyclic_placement(g, p)
    return mpo_order(g, pl, owner_compute_assignment(g, pl))


class TestReplicated:
    def test_chain_exact(self):
        g = chain(3)  # 3 tasks, 2 edges, 3 objects; accesses: 0+2*2...
        sizes = RecordSizes(task=10, access=1, edge=5, object_index=2)
        mem = replicated_dependence_memory(g, 2, sizes)
        accesses = sum(len(t.accesses) for t in g.tasks())
        expect = 3 * 10 + accesses * 1 + 2 * 5 + 3 * 2
        assert mem.per_proc == [expect, expect]
        assert mem.max_bytes == expect
        assert mem.total_bytes == 2 * expect

    def test_grows_with_graph(self):
        small = replicated_dependence_memory(chain(3), 1)
        big = replicated_dependence_memory(chain(30), 1)
        assert big.max_bytes > small.max_bytes


class TestDistributed:
    def test_totals_bounded_by_replication(self):
        g = random_trace(60, 10, seed=1)
        s = sched(g, 4)
        rep = replicated_dependence_memory(g, 4)
        dist = distributed_dependence_memory(s)
        assert dist.max_bytes <= rep.max_bytes
        # cross edges double-counted, so total can exceed one replica but
        # never p replicas
        assert dist.total_bytes <= rep.total_bytes

    def test_all_tasks_accounted(self):
        g = random_trace(40, 8, seed=2)
        s = sched(g, 3)
        sizes = RecordSizes(task=1, access=0, edge=0, object_index=0)
        dist = distributed_dependence_memory(s, sizes)
        assert dist.total_bytes == g.num_tasks

    def test_cross_edges_counted_twice(self):
        g = chain(2)
        from repro.core.placement import placement_from_dict

        pl = placement_from_dict(2, {"d0": 0, "d1": 1})
        asg = owner_compute_assignment(g, pl)
        s = mpo_order(g, pl, asg)
        sizes = RecordSizes(task=0, access=0, edge=1, object_index=0)
        dist = distributed_dependence_memory(s, sizes)
        assert dist.total_bytes == 2  # one cross edge, both endpoints


class TestReport:
    def test_fractions(self):
        g = random_trace(50, 10, seed=3)
        s = sched(g, 4)
        rep = dependence_memory_report(s, data_per_proc=1000)
        assert 0 < rep.distributed_fraction <= rep.replicated_fraction < 1
        assert 0 <= rep.savings < 1
        assert rep.s1 == g.total_data()

    def test_zero_data(self):
        g = chain(3)
        s = sched(g, 1)
        rep = dependence_memory_report(s, data_per_proc=0)
        assert rep.replicated_fraction == 1.0
