"""Unit tests for placement / ownership (Definitions 1 and 3)."""

import pytest

from repro.core.placement import (
    Placement,
    accessed_objects,
    block_placement,
    cyclic_placement,
    derive_placement,
    owner_compute_assignment,
    perm_vola_sets,
    placement_from_dict,
    validate_owner_compute,
)
from repro.errors import PlacementError
from repro.graph import GraphBuilder
from repro.graph.generators import chain, random_trace


def two_proc_graph():
    b = GraphBuilder(materialize_inputs=False)
    b.add_object("a", 2)
    b.add_object("b", 3)
    b.add_task("wa", writes=("a",))
    b.add_task("wb", reads=("a",), writes=("b",))
    b.add_task("r", reads=("a", "b"))
    return b.build()


class TestPlacement:
    def test_cyclic(self):
        g = chain(4)
        pl = cyclic_placement(g, 2)
        assert pl["d0"] == 0 and pl["d1"] == 1 and pl["d2"] == 0

    def test_cyclic_explicit_order(self):
        g = chain(3)
        pl = cyclic_placement(g, 2, order=["d2", "d1", "d0"])
        assert pl["d2"] == 0 and pl["d1"] == 1 and pl["d0"] == 0

    def test_block(self):
        g = chain(4)
        pl = block_placement(g, 2)
        assert pl["d0"] == 0 and pl["d1"] == 0 and pl["d2"] == 1 and pl["d3"] == 1

    def test_from_dict(self):
        pl = placement_from_dict(2, {"x": 1})
        assert pl["x"] == 1

    def test_owner_out_of_range(self):
        with pytest.raises(PlacementError):
            Placement(2, {"x": 5})

    def test_bad_num_procs(self):
        with pytest.raises(PlacementError):
            Placement(0, {})

    def test_missing_owner(self):
        pl = Placement(2, {})
        with pytest.raises(PlacementError):
            pl["x"]

    def test_owned_by(self):
        pl = Placement(2, {"a": 0, "b": 1, "c": 0})
        assert pl.owned_by(0) == ["a", "c"]


class TestOwnerCompute:
    def test_writers_on_owner(self):
        g = two_proc_graph()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        asg = owner_compute_assignment(g, pl)
        assert asg["wa"] == 0 and asg["wb"] == 1

    def test_read_only_task_colocated_with_input(self):
        g = two_proc_graph()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        asg = owner_compute_assignment(g, pl)
        assert asg["r"] == 0  # owner of first read 'a'

    def test_multi_owner_write_rejected(self):
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a")
        b.add_object("b")
        b.add_task("t", writes=("a", "b"))
        g = b.build()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        with pytest.raises(PlacementError):
            owner_compute_assignment(g, pl)

    def test_validate_owner_compute(self):
        g = two_proc_graph()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        asg = owner_compute_assignment(g, pl)
        validate_owner_compute(g, pl, asg)
        asg["wa"] = 1
        with pytest.raises(PlacementError):
            validate_owner_compute(g, pl, asg)

    def test_derive_placement_roundtrip(self):
        g = random_trace(40, 10, seed=5)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        derived = derive_placement(g, asg, 3)
        for t in g.tasks():
            for o in t.writes:
                assert derived[o] == pl[o]

    def test_derive_placement_conflict(self):
        # make both writers write 'a' on different procs
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", writes=("a",))
        g2 = b.build()
        with pytest.raises(PlacementError):
            derive_placement(g2, {"w1": 0, "w2": 1}, 2)


class TestPermVola:
    def test_sets(self):
        g = two_proc_graph()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        asg = owner_compute_assignment(g, pl)
        perm, vola = perm_vola_sets(g, pl, asg)
        assert perm[0] == {"a"}
        assert vola[1] == {"a"}  # wb reads a remotely
        assert perm[1] == {"b"}

    def test_accessed_objects(self):
        g = two_proc_graph()
        assert accessed_objects(g, ["wb"]) == {"a", "b"}
