"""White-box edge-case tests for the list-scheduling engine."""

import pytest

from repro.core import cyclic_placement, gantt, owner_compute_assignment
from repro.core.listsched import StaticPolicy, run_list_scheduler
from repro.core.schedule import CommModel
from repro.errors import SchedulingError
from repro.graph import GraphBuilder
from repro.graph.generators import chain, fork_join


def build_graph(tasks):
    """tasks: list of (name, reads, writes, weight)."""
    b = GraphBuilder(materialize_inputs=False)
    objs = {o for _n, r, w, _wt in tasks for o in (*r, *w)}
    for o in sorted(objs):
        b.add_object(o, 1)
    for n, r, w, wt in tasks:
        b.add_task(n, reads=r, writes=w, weight=wt)
    return b.build()


class TestEngineEdges:
    def test_zero_weight_tasks(self):
        g = build_graph([("a", (), ("x",), 0.0), ("b", ("x",), ("y",), 0.0)])
        pl = cyclic_placement(g, 2)
        asg = owner_compute_assignment(g, pl)
        s = run_list_scheduler(g, pl, asg, StaticPolicy({"a": 1.0, "b": 1.0}))
        assert gantt(s).makespan >= 0

    def test_single_task(self):
        g = build_graph([("only", (), ("x",), 2.0)])
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        s = run_list_scheduler(g, pl, asg, StaticPolicy({"only": 1.0}))
        assert s.orders[asg["only"]] == ["only"]

    def test_empty_graph(self):
        g = GraphBuilder(materialize_inputs=False).build()
        pl = cyclic_placement(g, 2)
        s = run_list_scheduler(g, pl, {}, StaticPolicy({}))
        assert s.orders == [[], []]

    def test_levels_gate_strictness(self):
        """A ready task of a later level waits for every earlier-level
        task on its processor, even when idle time is available."""
        g = fork_join(1, 3)
        pl = cyclic_placement(g, 1, order=sorted(o.name for o in g.objects()))
        asg = {t: 0 for t in g.task_names}
        # put mid tasks in levels 0, 1, 2 artificially
        levels = {"fork0": 0, "mid0_0": 2, "mid0_1": 1, "mid0_2": 0, "join0": 3}
        s = run_list_scheduler(
            g, pl, asg, StaticPolicy({t: 1.0 for t in g.task_names}), levels=levels
        )
        order = s.orders[0]
        assert order.index("mid0_2") < order.index("mid0_1") < order.index("mid0_0")

    def test_inconsistent_levels_stall_detected(self):
        """Levels that invert a dependence stall the engine with a clear
        error instead of looping."""
        g = chain(2)
        pl = cyclic_placement(g, 1, order=["d0", "d1"])
        asg = {t: 0 for t in g.task_names}
        levels = {"T0": 1, "T1": 0}  # T1 gated before T0, but T1 needs T0
        with pytest.raises(SchedulingError):
            run_list_scheduler(
                g, pl, asg, StaticPolicy({"T0": 1.0, "T1": 1.0}), levels=levels
            )

    def test_dynamic_priority_refresh(self):
        """A policy that boosts one task after another is scheduled sees
        the boost honoured (lazy heap invalidation)."""

        class Boost:
            def __init__(self):
                self.boosted = False

            def priority(self, task):
                if task == "late" and self.boosted:
                    return (100.0,)
                return {"first": (10.0,), "late": (0.0,), "mid": (5.0,)}[task]

            def on_scheduled(self, task, proc):
                if task == "first":
                    self.boosted = True
                    return ["late"]
                return []

        g = build_graph(
            [
                ("first", (), ("x",), 1.0),
                ("mid", (), ("y",), 1.0),
                ("late", (), ("z",), 1.0),
            ]
        )
        pl = cyclic_placement(g, 1, order=["x", "y", "z"])
        asg = {t: 0 for t in g.task_names}
        s = run_list_scheduler(g, pl, asg, Boost())
        order = s.orders[0]
        assert order == ["first", "late", "mid"]

    def test_comm_model_affects_start_times(self):
        g = chain(2)
        pl = cyclic_placement(g, 2, order=["d0", "d1"])
        asg = owner_compute_assignment(g, pl)
        cheap = run_list_scheduler(
            g, pl, asg, StaticPolicy({"T0": 1.0, "T1": 1.0}), comm=CommModel(0.1)
        )
        costly = run_list_scheduler(
            g, pl, asg, StaticPolicy({"T0": 1.0, "T1": 1.0}), comm=CommModel(10.0)
        )
        assert gantt(costly, CommModel(10.0)).makespan > gantt(
            cheap, CommModel(0.1)
        ).makespan


class TestScheduleEdges:
    def test_serial_schedule_custom_order(self):
        from repro.core import serial_schedule

        g = chain(3)
        s = serial_schedule(g, order=["T0", "T1", "T2"])
        assert s.orders[0] == ["T0", "T1", "T2"]

    def test_ascii_with_unit(self):
        from repro.core import gantt, serial_schedule

        g = chain(3)
        art = gantt(serial_schedule(g)).as_ascii(unit=0.5)
        assert "PT = 3" in art

    def test_empty_ascii(self):
        from repro.core import Schedule, gantt
        from repro.core.placement import Placement

        g = GraphBuilder(materialize_inputs=False).build()
        s = Schedule(g, Placement(1, {}), {}, [[]])
        assert "empty" in gantt(s).as_ascii()
