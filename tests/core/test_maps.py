"""Unit tests for the static MAP planner (section 3.3)."""

import pytest

from repro.core import (
    analyze_memory,
    cyclic_placement,
    mpo_order,
    owner_compute_assignment,
    plan_maps,
    rcp_order,
    unconstrained_plan,
)
from repro.errors import NonExecutableScheduleError
from repro.graph.generators import random_trace
from repro.graph.paper_example import paper_example_graph, schedule_b, schedule_c


class TestPlanner:
    def test_first_map_at_beginning(self):
        g = paper_example_graph()
        plan = plan_maps(schedule_c(g), 8)
        for pts, order in zip(plan.points, plan.schedule.orders):
            if order:
                assert pts[0].position == 0

    def test_single_map_when_memory_ample(self):
        g = paper_example_graph()
        plan = plan_maps(schedule_c(g), 100)
        assert plan.maps_per_proc == [1, 1]
        assert plan.avg_maps == 1.0

    def test_unconstrained_plan(self):
        g = paper_example_graph()
        plan = unconstrained_plan(schedule_c(g))
        assert plan.avg_maps == 1.0

    def test_maps_increase_as_memory_shrinks(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        counts = [
            plan_maps(sc, cap, prof).avg_maps
            for cap in range(prof.min_mem, prof.tot + 1)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_non_executable_below_min_mem(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        with pytest.raises(NonExecutableScheduleError):
            plan_maps(sc, prof.min_mem - 1, prof)

    def test_executable_at_exactly_min_mem(self):
        """The planner and Definition 6 agree at the boundary."""
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, prof.min_mem, prof)
        assert plan.avg_maps >= 1.0

    def test_allocs_cover_all_volatiles_once(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, prof.min_mem, prof)
        for q, pts in enumerate(plan.points):
            allocs = [m for mp in pts for m in mp.allocs]
            assert sorted(allocs) == sorted(prof.procs[q].span)
            assert len(set(allocs)) == len(allocs)  # allocated once

    def test_frees_subset_of_allocs(self):
        g = paper_example_graph()
        sc = schedule_b(g)
        prof = analyze_memory(sc)
        plan = plan_maps(sc, prof.min_mem, prof)
        for pts in plan.points:
            allocated = set()
            for mp in pts:
                for m in mp.frees:
                    assert m in allocated
                    allocated.discard(m)
                allocated.update(mp.allocs)

    def test_notifications_target_owners(self):
        g = paper_example_graph()
        sc = schedule_c(g)
        plan = plan_maps(sc, 8)
        for pts in plan.points:
            for mp in pts:
                for owner, objs in mp.notifications.items():
                    for m in objs:
                        assert sc.placement[m] == owner
                        assert owner != mp.proc

    def test_budget_respected_between_maps(self):
        """Walking the plan never exceeds capacity (frees only at MAPs)."""
        for seed in range(6):
            g = random_trace(60, 10, seed=seed)
            pl = cyclic_placement(g, 3)
            asg = owner_compute_assignment(g, pl)
            s = mpo_order(g, pl, asg)
            prof = analyze_memory(s)
            cap = prof.min_mem
            plan = plan_maps(s, cap, prof)
            for q, pts in enumerate(plan.points):
                used = prof.procs[q].perm_bytes
                sizes = {m: g.object(m).size for m in prof.procs[q].span}
                for mp in pts:
                    used -= sum(sizes[m] for m in mp.frees)
                    used += sum(sizes[m] for m in mp.allocs)
                    assert used <= cap

    def test_stats(self):
        g = paper_example_graph()
        plan = plan_maps(schedule_c(g), 8)
        assert plan.total_allocations == 5  # 4 volatiles on P1 + 1 on P0
        assert plan.total_frees >= 2
        assert plan.total_packages >= 2
        assert plan.map_positions(1)[0] == 0


class TestAgreementWithDefinition6:
    """plan_maps succeeds exactly when capacity >= MIN_MEM."""

    @pytest.mark.parametrize("seed", range(5))
    def test_boundary(self, seed):
        g = random_trace(50, 8, seed=seed)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        s = rcp_order(g, pl, asg)
        prof = analyze_memory(s)
        plan_maps(s, prof.min_mem, prof)  # must not raise
        if prof.min_mem > prof.procs[0].perm_bytes:
            with pytest.raises(NonExecutableScheduleError):
                plan_maps(s, prof.min_mem - 1, prof)
