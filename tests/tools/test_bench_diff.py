"""Unit tests for the bench trend gate (tools/bench_diff.py)."""

import copy
import importlib.util
import json
import pathlib

_TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location(
    "bench_diff", _TOOLS / "bench_diff.py"
)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)

REPO = _TOOLS.parent
COMMITTED = REPO / "BENCH_sweep.json"

#: A minimal but gate-covering bench document.
BASE = {
    "schema": "repro-bench-sweep/7",
    "generated_utc": "2026-08-08T00:00:00+00:00",
    "sweep": {"serial_s": 10.0, "parallel_s": 8.0, "jobs": 2,
              "identical_to_serial": True,
              "cells": [{"cell_s": 1.0}]},
    "engines": {"gate": {"speedup": 50.0, "exact": True}},
    "runtime": {"supervised_vs_plain": 1.02},
    "obs": {"traced_vs_plain": 1.01},
    "instrumentation": {"null_vs_plain": 0.98, "metrics_vs_plain": 2.7},
    "conformance": {"null_faults_vs_plain": 1.0, "checked_vs_plain": 1.5},
    "analysis": {"checked_vs_analyze": 5.6},
}


def write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


class TestFlatten:
    def test_numeric_leaves_as_dotted_paths(self):
        flat = bench_diff.flatten(BASE)
        assert flat["sweep.serial_s"] == 10.0
        assert flat["engines.gate.speedup"] == 50.0

    def test_strings_bools_and_lists_are_skipped(self):
        flat = bench_diff.flatten(BASE)
        assert "schema" not in flat
        assert "generated_utc" not in flat
        assert "sweep.identical_to_serial" not in flat  # bool
        assert not any(k.startswith("sweep.cells") for k in flat)  # list


class TestGates:
    def test_self_compare_is_clean(self, tmp_path):
        p = write(tmp_path, "b.json", BASE)
        assert bench_diff.main([p, p]) == 0

    def test_committed_baseline_self_compare(self):
        # The acceptance criterion: the committed scorecard diffed
        # against itself exits zero.
        assert bench_diff.main([str(COMMITTED), str(COMMITTED)]) == 0

    def test_max_gate_breach_exits_nonzero(self, tmp_path):
        cur = copy.deepcopy(BASE)
        cur["runtime"]["supervised_vs_plain"] = 2.04  # doubled overhead
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
        ])
        assert rc == 1

    def test_min_gate_breach_exits_nonzero(self, tmp_path):
        cur = copy.deepcopy(BASE)
        cur["engines"]["gate"]["speedup"] = 5.0  # eroded 10x
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
        ])
        assert rc == 1

    def test_within_tolerance_passes(self, tmp_path):
        cur = copy.deepcopy(BASE)
        cur["runtime"]["supervised_vs_plain"] = 1.20  # < 1.02 * 1.30
        cur["engines"]["gate"]["speedup"] = 40.0      # > 50 / 1.30
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
        ])
        assert rc == 0

    def test_report_only_suppresses_failure_exit(self, tmp_path):
        cur = copy.deepcopy(BASE)
        cur["engines"]["gate"]["speedup"] = 1.0
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
            "--report-only",
        ])
        assert rc == 0

    def test_schema_growth_is_tolerated(self, tmp_path):
        # Baseline predates the obs section: its gate is skipped, new
        # keys are reported as added, and the diff stays clean.
        base = copy.deepcopy(BASE)
        del base["obs"]
        base["schema"] = "repro-bench-sweep/6"
        rc = bench_diff.main([
            write(tmp_path, "base.json", base),
            write(tmp_path, "cur.json", BASE),
        ])
        assert rc == 0
        rows = bench_diff.apply_gates(
            bench_diff.flatten(base), bench_diff.flatten(BASE),
            bench_diff.DEFAULT_GATES, bench_diff.DEFAULT_TOLERANCE,
        )
        (obs_row,) = [r for r in rows if r["path"] == "obs.traced_vs_plain"]
        assert obs_row["status"] == "skipped"

    def test_vanished_gated_claim_fails(self, tmp_path):
        # The current document dropping a gated path is a regression of
        # coverage, not schema growth.
        cur = copy.deepcopy(BASE)
        del cur["engines"]
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
        ])
        assert rc == 1

    def test_gate_override_tightens_one_path(self, tmp_path):
        cur = copy.deepcopy(BASE)
        cur["runtime"]["supervised_vs_plain"] = 1.10  # +8%: inside 1.30
        args = [
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
        ]
        assert bench_diff.main(args) == 0
        assert bench_diff.main(
            args + ["--gate", "runtime.supervised_vs_plain=1.05"]
        ) == 1


class TestLoadErrors:
    def test_wrong_schema_family_exits_two(self, tmp_path):
        p = write(tmp_path, "x.json", {"schema": "something-else/1"})
        ok = write(tmp_path, "ok.json", BASE)
        assert bench_diff.main([p, ok]) == 2

    def test_missing_file_exits_two(self, tmp_path):
        ok = write(tmp_path, "ok.json", BASE)
        assert bench_diff.main([str(tmp_path / "absent.json"), ok]) == 2

    def test_bad_gate_spec_exits_two(self, tmp_path):
        ok = write(tmp_path, "ok.json", BASE)
        assert bench_diff.main([ok, ok, "--gate", "nonsense"]) == 2


class TestJsonOutput:
    def test_machine_readable_report(self, tmp_path, capsys):
        cur = copy.deepcopy(BASE)
        cur["sweep"]["serial_s"] = 11.0
        rc = bench_diff.main([
            write(tmp_path, "base.json", BASE),
            write(tmp_path, "cur.json", cur),
            "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-bench-diff/1"
        assert doc["ok"] is True
        assert doc["diff"]["deltas"]["sweep.serial_s"]["ratio"] == 1.1
