"""Tests for the classic task-graph families."""

import pytest

from repro.core import (
    analyze_memory,
    gantt,
)
from repro.core.dts import dts_space_bound
from repro.graph.analysis import depth, is_topological
from repro.graph.classic import (
    cholesky_column_graph,
    dense_lu_graph,
    fft_graph,
    stencil_1d,
)
from repro.graph.builder import is_source_task
from repro.machine import UNIT_MACHINE, simulate
from repro.rapid import parallelize


class TestDenseLU:
    def test_task_count(self):
        g = dense_lu_graph(5)
        real = [t for t in g.task_names if not is_source_task(t)]
        assert len(real) == 5 + 4 + 3 + 2 + 1  # F(k) + U(k, j)

    def test_wavefront_depth(self):
        g = dense_lu_graph(5)
        # critical chain F(0), U(0,1), F(1), U(1,2), ...
        assert depth(g) >= 2 * 5 - 1

    def test_schedulable(self):
        g = dense_lu_graph(6)
        s = parallelize(g, 3, heuristic="mpo")
        assert gantt(s).makespan > 0


class TestCholeskyColumns:
    def test_updates_commute(self):
        g = cholesky_column_graph(5)
        groups = g.commute_groups()
        assert len(groups["cmod:4"]) == 4

    def test_memory_hierarchy_on_wavefront(self):
        g = cholesky_column_graph(8)
        s_rcp = parallelize(g, 4, heuristic="rcp")
        s_dts = parallelize(g, 4, heuristic="dts")
        m_rcp = analyze_memory(s_rcp).min_mem
        m_dts = analyze_memory(s_dts).min_mem
        assert m_dts <= m_rcp
        bound = dts_space_bound(g, s_dts.placement, s_dts.assignment)
        assert m_dts <= bound


class TestFFT:
    def test_structure(self):
        g = fft_graph(3)
        real = [t for t in g.task_names if not is_source_task(t)]
        assert len(real) == 3 * 4  # m stages x n/2 butterflies
        assert depth(g) == 3 + 1  # sources + stages

    def test_bad_m(self):
        with pytest.raises(ValueError):
            fft_graph(0)

    def test_dsc_clustering_handles_pair_writes(self):
        """Butterflies write two objects; DSC-derived placement keeps
        owner-compute consistent."""
        g = fft_graph(3)
        s = parallelize(g, 2, clustering="dsc")
        prof = analyze_memory(s)
        res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.parallel_time > 0


class TestStencil:
    def test_double_buffered_shape(self):
        g = stencil_1d(6, 3)
        real = [t for t in g.task_names if not is_source_task(t)]
        assert len(real) == 18
        assert is_topological(g, g.topological_order())

    def test_in_place_variant(self):
        g = stencil_1d(5, 2, in_place=True)
        s = parallelize(g, 2, heuristic="mpo")
        assert gantt(s).makespan > 0

    def test_wavefront_parallelism(self):
        """The double-buffered stencil parallelises well across procs."""
        g = stencil_1d(12, 4, weight=2.0)
        s = parallelize(g, 4, heuristic="rcp")
        serial = g.total_work()
        assert gantt(s).makespan < serial

    def test_all_heuristics_simulate(self):
        g = stencil_1d(8, 3)
        for h in ("rcp", "mpo", "dts"):
            s = parallelize(g, 3, heuristic=h)
            prof = analyze_memory(s)
            res = simulate(s, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
            assert res.peak_memory <= prof.min_mem
