"""Unit tests for the TaskGraph container."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graph import DataObject, Task, TaskGraph


def diamond() -> TaskGraph:
    """a -> b, a -> c, b -> d, c -> d."""
    g = TaskGraph()
    for o in "wxyz":
        g.add_object(o, 1)
    g.add_task(Task("a", writes=("w",)))
    g.add_task(Task("b", reads=("w",), writes=("x",)))
    g.add_task(Task("c", reads=("w",), writes=("y",)))
    g.add_task(Task("d", reads=("x", "y"), writes=("z",)))
    g.add_edge("a", "b", "w")
    g.add_edge("a", "c", "w")
    g.add_edge("b", "d", "x")
    g.add_edge("c", "d", "y")
    return g


class TestConstruction:
    def test_counts(self):
        g = diamond()
        assert g.num_tasks == 4 and g.num_objects == 4 and g.num_edges == 4

    def test_add_object_idempotent(self):
        g = TaskGraph()
        g.add_object("a", 2)
        g.add_object(DataObject("a", 2))
        assert g.num_objects == 1

    def test_object_size_conflict(self):
        g = TaskGraph()
        g.add_object("a", 2)
        with pytest.raises(GraphError):
            g.add_object("a", 3)

    def test_duplicate_task(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_task(Task("t", writes=("a",)))
        with pytest.raises(GraphError):
            g.add_task(Task("t", writes=("a",)))

    def test_unknown_object_access(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task(Task("t", reads=("nope",)))

    def test_self_edge_rejected(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_task(Task("t", writes=("a",)))
        with pytest.raises(GraphError):
            g.add_edge("t", "t")

    def test_unknown_edge_endpoint(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_task(Task("t", writes=("a",)))
        with pytest.raises(GraphError):
            g.add_edge("t", "u")

    def test_parallel_edges_merged(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_object("b")
        g.add_task(Task("u", writes=("a", "b")))
        g.add_task(Task("v", reads=("a", "b")))
        g.add_edge("u", "v", "a")
        g.add_edge("u", "v", "b")
        assert g.num_edges == 1
        assert g.edge_objects("u", "v") == {"a", "b"}

    def test_sync_edge(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_task(Task("u", writes=("a",)))
        g.add_task(Task("v"))
        g.add_edge("u", "v", None)
        assert g.edge_objects("u", "v") == frozenset()

    def test_freeze_blocks_mutation(self):
        g = diamond().freeze()
        with pytest.raises(GraphError):
            g.add_object("new")


class TestQueries:
    def test_entry_exit(self):
        g = diamond()
        assert g.entry_tasks() == ["a"]
        assert g.exit_tasks() == ["d"]

    def test_degrees(self):
        g = diamond()
        assert g.in_degree("d") == 2 and g.out_degree("a") == 2

    def test_writers_readers(self):
        g = diamond()
        assert g.writers("w") == ["a"]
        assert g.readers("w") == ["b", "c"]

    def test_topological_order(self):
        g = diamond()
        order = g.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_object("a")
        g.add_task(Task("u", writes=("a",)))
        g.add_task(Task("v", reads=("a",)))
        g.add_edge("u", "v", "a")
        g.add_edge("v", "u", None)
        with pytest.raises(CycleError):
            g.freeze()

    def test_totals(self):
        g = diamond()
        assert g.total_work() == 4.0
        assert g.total_data() == 4

    def test_unknown_lookups(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.task("nope")
        with pytest.raises(GraphError):
            g.object("nope")
        with pytest.raises(GraphError):
            g.edge_objects("a", "d")

    def test_contains_len(self):
        g = diamond()
        assert "a" in g and "nope" not in g
        assert len(g) == 4

    def test_frozen_index_maps(self):
        g = diamond().freeze()
        assert g.task_index["a"] == 0
        assert set(g.object_index) == {"w", "x", "y", "z"}


class TestCommuteGroups:
    def test_groups_registered(self):
        g = TaskGraph()
        g.add_object("acc")
        g.add_task(Task("u1", writes=("acc",), commute="s"))
        g.add_task(Task("u2", writes=("acc",), commute="s"))
        groups = g.commute_groups()
        assert groups == {"s": ("u1", "u2")}
        assert g.commute_peers("u1") == ("u2",)

    def test_no_group(self):
        g = diamond()
        assert g.commute_peers("a") == ()
