"""Unit tests for graph analyses (levels, critical path, stats)."""

import pytest

from repro.graph.analysis import (
    b_levels,
    critical_path_length,
    depth,
    graph_stats,
    has_path,
    is_topological,
    level_sets,
    mapped_edge_cost,
    reachable_from,
    size_edge_cost,
    t_levels,
    uniform_edge_cost,
    zero_edge_cost,
)
from repro.graph.generators import chain, fork_join, in_tree


class TestLevels:
    def test_chain_blevels(self):
        g = chain(4)
        bl = b_levels(g)
        assert bl["T0"] == 4 and bl["T3"] == 1

    def test_chain_tlevels(self):
        g = chain(4)
        tl = t_levels(g)
        assert tl["T0"] == 0 and tl["T3"] == 3

    def test_blevel_with_comm(self):
        g = chain(3)
        bl = b_levels(g, uniform_edge_cost(2.0))
        # T0 -> T1 -> T2 with two messages: 1+2+1+2+1.
        assert bl["T0"] == 7

    def test_mapped_edge_cost_zeroes_local(self):
        g = chain(3)
        assignment = {"T0": 0, "T1": 0, "T2": 1}
        cost = mapped_edge_cost(assignment, uniform_edge_cost(2.0))
        bl = b_levels(g, cost)
        # only T1 -> T2 crosses processors.
        assert bl["T0"] == 5

    def test_size_edge_cost(self):
        g = chain(2, size=10)
        cost = size_edge_cost(g, latency=1.0, byte_time=0.5)
        assert cost("T0", "T1", frozenset(["d0"])) == pytest.approx(6.0)
        assert cost("T0", "T1", frozenset()) == 0.0

    def test_zero_edge_cost(self):
        assert zero_edge_cost("a", "b", frozenset(["x"])) == 0.0


class TestCriticalPath:
    def test_chain(self):
        assert critical_path_length(chain(5)) == 5

    def test_fork_join(self):
        g = fork_join(1, 4)
        # fork -> mid -> join.
        assert critical_path_length(g) == 3

    def test_weighted(self):
        g = chain(3, weight=2.5)
        assert critical_path_length(g) == pytest.approx(7.5)


class TestStructure:
    def test_depth(self):
        assert depth(chain(6)) == 6
        assert depth(in_tree(3)) == 3

    def test_level_sets(self):
        g = fork_join(1, 3)
        levels = level_sets(g)
        assert [len(l) for l in levels] == [1, 3, 1]

    def test_reachable(self):
        g = chain(4)
        assert reachable_from(g, ["T1"]) == {"T1", "T2", "T3"}

    def test_has_path(self):
        g = fork_join(1, 2)
        assert has_path(g, "fork0", "join0")
        assert not has_path(g, "mid0_0", "mid0_1")
        assert has_path(g, "mid0_0", "mid0_0")

    def test_is_topological(self):
        g = chain(3)
        assert is_topological(g, ["T0", "T1", "T2"])
        assert not is_topological(g, ["T1", "T0", "T2"])
        assert not is_topological(g, ["T0", "T1"])

    def test_graph_stats(self):
        g = chain(4)
        s = graph_stats(g)
        assert s["tasks"] == 4 and s["edges"] == 3
        assert s["critical_path"] == 4
        assert s["parallelism"] == pytest.approx(1.0)
        assert s["S1"] == 4
