"""Unit tests for DataObject / Task primitives."""

import pytest

from repro.graph.objects import Access, AccessMode, DataObject
from repro.graph.tasks import Task


class TestDataObject:
    def test_basic(self):
        d = DataObject("a", 4)
        assert d.name == "a" and d.size == 4

    def test_default_unit_size(self):
        assert DataObject("a").size == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            DataObject("", 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataObject("a", -1)

    def test_zero_size_allowed(self):
        assert DataObject("a", 0).size == 0

    def test_equality_and_hash(self):
        assert DataObject("a", 2) == DataObject("a", 2)
        assert DataObject("a", 2) != DataObject("a", 3)
        assert len({DataObject("a", 2), DataObject("a", 2)}) == 1


class TestAccessMode:
    def test_read_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes

    def test_write_flags(self):
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads

    def test_readwrite_flags(self):
        assert AccessMode.READWRITE.reads and AccessMode.READWRITE.writes

    def test_access_wrapper(self):
        a = Access("x", AccessMode.READWRITE)
        assert a.reads and a.writes


class TestTask:
    def test_basic(self):
        t = Task("t", reads=("a",), writes=("b",), weight=2.0)
        assert t.reads == ("a",) and t.writes == ("b",) and t.weight == 2.0

    def test_list_inputs_normalised(self):
        t = Task("t", reads=["a"], writes=["b"])
        assert isinstance(t.reads, tuple) and isinstance(t.writes, tuple)

    def test_accesses_dedup(self):
        t = Task("t", reads=("a", "b"), writes=("b", "c"))
        assert t.accesses == ("a", "b", "c")

    def test_read_only_write_only(self):
        t = Task("t", reads=("a", "b"), writes=("b", "c"))
        assert t.read_only == ("a",)
        assert t.write_only == ("c",)

    def test_touches(self):
        t = Task("t", reads=("a",), writes=("b",))
        assert t.touches("a") and t.touches("b") and not t.touches("c")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Task("t", weight=-1.0)

    def test_duplicate_read_rejected(self):
        with pytest.raises(ValueError):
            Task("t", reads=("a", "a"))

    def test_duplicate_write_rejected(self):
        with pytest.raises(ValueError):
            Task("t", writes=("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Task("")

    def test_commute_tag(self):
        t = Task("t", reads=("a",), writes=("a",), commute="grp")
        assert t.commute == "grp"

    def test_kernel_not_compared(self):
        t1 = Task("t", kernel=lambda store: None)
        t2 = Task("t", kernel=None)
        assert t1 == t2
