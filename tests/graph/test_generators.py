"""Unit tests for the synthetic DAG generators."""

import pytest

from repro.graph import generators as gen
from repro.graph.analysis import depth, is_topological


class TestChain:
    def test_shape(self):
        g = gen.chain(5)
        assert g.num_tasks == 5 and g.num_edges == 4
        assert depth(g) == 5


class TestForkJoin:
    def test_shape(self):
        g = gen.fork_join(2, 3)
        assert g.num_tasks == 2 * (1 + 3 + 1)
        assert depth(g) == 6

    def test_stage_linking(self):
        g = gen.fork_join(2, 2)
        assert g.has_edge("join0", "fork1")


class TestTrees:
    def test_out_tree(self):
        g = gen.out_tree(3)
        assert g.num_tasks == 7
        assert len(g.exit_tasks()) == 4

    def test_in_tree(self):
        g = gen.in_tree(3)
        assert g.num_tasks == 7
        assert g.exit_tasks() == ["T0"]
        assert len(g.entry_tasks()) == 4


class TestReductionTree:
    def test_commute_group(self):
        g = gen.reduction_tree(4)
        groups = g.commute_groups()
        assert len(groups["acc-sum"]) == 4
        # final reads after all adds
        for i in range(4):
            assert g.has_edge(f"add{i}", "final")

    def test_no_intra_group_edges(self):
        g = gen.reduction_tree(4)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert not g.has_edge(f"add{i}", f"add{j}")


class TestLayeredRandom:
    def test_deterministic(self):
        g1 = gen.layered_random(4, 5, seed=11)
        g2 = gen.layered_random(4, 5, seed=11)
        assert sorted(g1.task_names) == sorted(g2.task_names)
        assert sorted((u, v) for u, v, _ in g1.edges()) == sorted(
            (u, v) for u, v, _ in g2.edges()
        )

    def test_layer_structure(self):
        g = gen.layered_random(4, 5, seed=0)
        assert g.num_tasks == 20
        assert depth(g) == 4

    def test_bad_density(self):
        with pytest.raises(ValueError):
            gen.layered_random(2, 2, density=0.0)

    def test_mixed_granularity(self):
        g = gen.layered_random(4, 8, seed=1, min_weight=1, max_weight=10)
        weights = {t.weight for t in g.tasks()}
        assert max(weights) / min(weights) > 1.5


class TestRandomTrace:
    def test_is_dag(self):
        g = gen.random_trace(50, 10, seed=4)
        assert is_topological(g, g.topological_order())

    def test_deterministic(self):
        g1 = gen.random_trace(30, 8, seed=9)
        g2 = gen.random_trace(30, 8, seed=9)
        assert g1.num_edges == g2.num_edges

    def test_sources_materialized(self):
        g = gen.random_trace(30, 8, seed=2)
        # every read has a producer
        produced = {m for t in g.tasks() for m in t.writes}
        for t in g.tasks():
            for m in t.reads:
                assert m in produced
