"""Tests for the data-renaming (multi-buffering) transformation."""

import pytest

from repro.core import (
    analyze_memory,
    gantt,
    mpo_order,
    owner_compute_assignment,
)
from repro.core.placement import placement_from_dict
from repro.graph import GraphBuilder
from repro.graph.analysis import is_topological
from repro.graph.generators import chain, random_trace
from repro.graph.renaming import (
    buffer_name,
    rename_versions,
    renamed_objects,
    renaming_memory_overhead,
)
from repro.graph.repeat import repeat_graph


def producer_consumer(iterations=4):
    b = GraphBuilder(materialize_inputs=False)
    b.add_object("a", 1)
    b.add_object("b", 1)
    b.add_task("wa", writes=("a",), weight=3.0)
    b.add_task("rb", reads=("a",), writes=("b",), weight=1.0)
    return repeat_graph(b.build(), iterations)


def two_proc_schedule(g):
    owner = {o.name: (0 if o.name.startswith("a") else 1) for o in g.objects()}
    pl = placement_from_dict(2, owner)
    asg = owner_compute_assignment(g, pl)
    return mpo_order(g, pl, asg)


class TestTransformation:
    def test_buffer_names(self):
        assert buffer_name("x", 0) == "x"
        assert buffer_name("x", 1) == "x#b1"
        assert renamed_objects("x", 3) == ["x", "x#b1", "x#b2"]

    def test_buffers_one_is_identity_shape(self):
        g = random_trace(30, 6, seed=1)
        r = rename_versions(g, buffers=1)
        assert r.num_objects == g.num_objects
        assert sorted(t for t in r.task_names) == sorted(
            t for t in g.task_names
        )

    def test_objects_duplicated(self):
        g = producer_consumer()
        r = rename_versions(g, buffers=2, objects=["a"])
        names = {o.name for o in r.objects()}
        assert "a#b1" in names and "b#b1" not in names

    def test_memory_overhead_ratio(self):
        g = producer_consumer()
        r = rename_versions(g, buffers=2, objects=["a", "b"])
        assert renaming_memory_overhead(g, r) == pytest.approx(2.0)

    def test_default_targets_multi_written(self):
        g = chain(4)  # every object written once
        r = rename_versions(g, buffers=2)
        assert r.num_objects == g.num_objects  # nothing to rename

    def test_unknown_object_rejected(self):
        g = chain(3)
        with pytest.raises(ValueError):
            rename_versions(g, objects=["nope"])

    def test_bad_buffers(self):
        with pytest.raises(ValueError):
            rename_versions(chain(2), buffers=0)

    def test_result_is_dag(self):
        g = producer_consumer(6)
        r = rename_versions(g, buffers=3, objects=["a", "b"])
        assert is_topological(r, r.topological_order())

    def test_rmw_stays_in_buffer(self):
        """Read-modify-write chains keep their buffer (no copies)."""
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("m", 1)
        b.add_task("w0", writes=("m",))
        b.add_task("w1", reads=("m",), writes=("m",))
        b.add_task("w2", reads=("m",), writes=("m",))
        g = b.build()
        r = rename_versions(g, buffers=2, objects=["m"])
        # w0 rotates into buffer 1; RMW tasks stay there.
        assert r.task("w1").writes == ("m#b1",)
        assert r.task("w2").writes == ("m#b1",)


class TestTradeoff:
    def test_pipelining_restored(self):
        """The paper's renaming remark, measured: double buffering
        removes the WAR handshake and shortens the pipelined makespan,
        at twice the data footprint."""
        g = producer_consumer(4)
        plain = two_proc_schedule(g)
        renamed_g = rename_versions(g, buffers=2, objects=["a", "b"])
        renamed = two_proc_schedule(renamed_g)
        pt_plain = gantt(plain).makespan
        pt_renamed = gantt(renamed).makespan
        assert pt_renamed < pt_plain
        m_plain = analyze_memory(plain).min_mem
        m_renamed = analyze_memory(renamed).min_mem
        assert m_renamed > m_plain

    def test_more_buffers_never_slower(self):
        g = producer_consumer(6)
        pts = []
        for k in (1, 2, 3):
            r = rename_versions(g, buffers=k, objects=["a", "b"])
            pts.append(gantt(two_proc_schedule(r)).makespan)
        assert pts[1] <= pts[0] and pts[2] <= pts[1] + 1e-9

    def test_kernels_dropped(self):
        b = GraphBuilder(materialize_inputs=False)
        b.add_object("m", 1)
        b.add_task("w0", writes=("m",), kernel=lambda s: None)
        b.add_task("w1", writes=("m",), kernel=lambda s: None)
        g = b.build()
        r = rename_versions(g, buffers=2, objects=["m"])
        assert all(t.kernel is None for t in r.tasks())
