"""Tests for graph/schedule repetition (iterative unrolling)."""

import numpy as np
import pytest

from repro.core import analyze_memory, gantt, mpo_order
from repro.core import owner_compute_assignment
from repro.graph.generators import chain, reduction_tree
from repro.graph.repeat import base_name, iter_name, repeat_graph, repeat_schedule
from repro.machine import UNIT_MACHINE, simulate
from repro.nbody import build_nbody
from repro.rapid.executor import execute_serial


class TestRepeatGraph:
    def test_task_count(self):
        g = chain(4)
        rg = repeat_graph(g, 3)
        assert rg.num_tasks == 12
        assert rg.num_objects == g.num_objects

    def test_names(self):
        assert iter_name("T0", 2) == "T0#it2"
        assert base_name("T0#it2") == "T0"
        assert base_name("plain") == "plain"

    def test_cross_iteration_chaining(self):
        g = chain(3)
        rg = repeat_graph(g, 2)
        # iteration 1's first task reads d0, last written by iteration
        # 0's T0 (write-after-... chained through the object versions).
        assert rg.has_edge(iter_name("T0", 0), iter_name("T1", 0))
        # T0#it1 rewrites d0: output dep from T0#it0's version chain.
        preds = set(rg.predecessors(iter_name("T0", 1)))
        assert any(base_name(p) in ("T0", "T1") for p in preds)

    def test_commute_keys_renamed(self):
        g = reduction_tree(3)
        rg = repeat_graph(g, 2)
        groups = rg.commute_groups()
        assert "acc-sum#it0" in groups and "acc-sum#it1" in groups
        assert len(groups["acc-sum#it0"]) == 3

    def test_bad_n(self):
        with pytest.raises(ValueError):
            repeat_graph(chain(2), 0)

    def test_matches_direct_multistep_build(self):
        """1-step N-body unrolled 3x computes the same trajectory as the
        directly-built 3-step graph."""
        p1 = build_nbody(k=3, steps=1, seed=4)
        p3 = build_nbody(k=3, steps=3, seed=4)
        rg = repeat_graph(p1.graph, 3)
        assert rg.num_tasks == p3.graph.num_tasks
        store = p1.initial_store()
        execute_serial(rg, store)
        assert np.allclose(
            p1.gather_positions(store), p3.reference_trajectory(), atol=1e-12
        )


class TestRepeatSchedule:
    def setup_method(self):
        self.prob = build_nbody(k=3, steps=1, seed=2)
        pl = self.prob.placement(3)
        asg = self.prob.assignment(pl)
        self.s1 = mpo_order(self.prob.graph, pl, asg)

    def test_valid_and_gantt(self):
        s3 = repeat_schedule(self.s1, 3)
        s3.validate()
        assert gantt(s3).makespan > 0

    def test_iteration_meta(self):
        assert repeat_schedule(self.s1, 2).meta["iterations"] == 2

    def test_simulatable_at_min_mem(self):
        s3 = repeat_schedule(self.s1, 2)
        prof = analyze_memory(s3)
        res = simulate(s3, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof)
        assert res.peak_memory <= prof.min_mem

    def test_memory_does_not_grow_with_iterations(self):
        """Volatile liveness across iterations recycles: unrolling more
        does not increase MIN_MEM."""
        m2 = analyze_memory(repeat_schedule(self.s1, 2)).min_mem
        m4 = analyze_memory(repeat_schedule(self.s1, 4)).min_mem
        assert m4 == m2

    def test_run_pipelined_api(self):
        from repro.machine.spec import UNIT_MACHINE as UM
        from repro.rapid.api import ParallelProgram

        prog = ParallelProgram(schedule=self.s1, spec=UM)
        res = prog.run_pipelined(3)
        assert res.parallel_time > 0


class TestPipeliningBenefit:
    def _stage_pipeline(self):
        from repro.core.placement import placement_from_dict
        from repro.graph import GraphBuilder

        b = GraphBuilder(materialize_inputs=False)
        for o in ("a", "b", "c"):
            b.add_object(o, 1)
        b.add_task("s1", writes=("a",), weight=1.0)
        b.add_task("s2", reads=("a",), writes=("b",), weight=1.0)
        b.add_task("s3", reads=("b",), writes=("c",), weight=1.0)
        g = b.build()
        pl = placement_from_dict(3, {"a": 0, "b": 1, "c": 2})
        return g, pl, owner_compute_assignment(g, pl)

    def test_stage_pipeline_overlaps(self):
        """A 3-stage pipeline across 3 processors overlaps iterations:
        the unrolled makespan beats the barrier estimate n * PT_1."""
        g, pl, asg = self._stage_pipeline()
        s1 = mpo_order(g, pl, asg)
        one = gantt(s1).makespan
        s8 = repeat_schedule(s1, 8)
        assert gantt(s8).makespan < 8 * one

    def test_buffer_reuse_can_serialise(self):
        """The dual effect — and why the paper discusses renaming [4]:
        re-using one buffer adds an anti-dependence handshake, so a
        tight producer/consumer loop can run *slower* than the barrier
        estimate.  Both behaviours are faithfully captured."""
        from repro.core.placement import placement_from_dict
        from repro.graph import GraphBuilder

        b = GraphBuilder(materialize_inputs=False)
        b.add_object("a", 1)
        b.add_object("b", 1)
        b.add_task("wa", writes=("a",), weight=3.0)
        b.add_task("rb", reads=("a",), writes=("b",), weight=1.0)
        g = b.build()
        pl = placement_from_dict(2, {"a": 0, "b": 1})
        asg = owner_compute_assignment(g, pl)
        s1 = mpo_order(g, pl, asg)
        one = gantt(s1).makespan
        s4 = repeat_schedule(s1, 4)
        # WAR handshake: wa#i+1 waits for rb#i's completion notification.
        assert gantt(s4).makespan >= 4 * one
