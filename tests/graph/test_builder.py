"""Unit tests for the inspector-style GraphBuilder."""

import pytest

from repro.errors import DependenceError, GraphError
from repro.graph import GraphBuilder, is_source_task, source_task_name


def build(mode="transform", materialize=False):
    return GraphBuilder(materialize_inputs=materialize, dependence_mode=mode)


class TestTrueDependences:
    def test_writer_to_reader(self):
        b = build()
        b.add_object("a")
        b.add_object("b")
        b.add_task("w", writes=("a",))
        b.add_task("r", reads=("a",), writes=("b",))
        g = b.build()
        assert g.has_edge("w", "r")
        assert g.edge_objects("w", "r") == {"a"}

    def test_last_writer_wins(self):
        b = build()
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", reads=("a",), writes=("a",))
        b.add_task("r", reads=("a",))
        g = b.build()
        assert g.has_edge("w2", "r")
        assert not g.has_edge("w1", "r")

    def test_rmw_chain(self):
        b = build()
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", reads=("a",), writes=("a",))
        b.add_task("w3", reads=("a",), writes=("a",))
        g = b.build()
        assert g.has_edge("w1", "w2") and g.has_edge("w2", "w3")
        assert not g.has_edge("w1", "w3")

    def test_multiple_readers(self):
        b = build()
        b.add_object("a")
        b.add_task("w", writes=("a",))
        b.add_task("r1", reads=("a",))
        b.add_task("r2", reads=("a",))
        g = b.build()
        assert g.has_edge("w", "r1") and g.has_edge("w", "r2")
        assert not g.has_edge("r1", "r2")


class TestTransformedDependences:
    def test_output_dep_becomes_sync_edge(self):
        """Write-after-write without a read gets a data-less sync edge."""
        b = build("transform")
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", writes=("a",))
        g = b.build()
        assert g.has_edge("w1", "w2")
        assert g.edge_objects("w1", "w2") == frozenset()

    def test_anti_dep_becomes_sync_edge(self):
        b = build("transform")
        b.add_object("a")
        b.add_object("b")
        b.add_task("w1", writes=("a",))
        b.add_task("r", reads=("a",), writes=("b",))
        b.add_task("w2", writes=("a",))
        g = b.build()
        assert g.has_edge("r", "w2")
        assert g.edge_objects("r", "w2") == frozenset()

    def test_subsumed_output_dep_not_duplicated(self):
        """RMW writers already have a true edge; no sync edge is added."""
        b = build("transform")
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", reads=("a",), writes=("a",))
        g = b.build()
        assert g.edge_objects("w1", "w2") == {"a"}

    def test_check_mode_raises(self):
        b = build("check")
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        with pytest.raises(DependenceError):
            b.add_task("w2", writes=("a",))

    def test_ignore_mode_drops(self):
        b = build("ignore")
        b.add_object("a")
        b.add_task("w1", writes=("a",))
        b.add_task("w2", writes=("a",))
        g = b.build()
        assert not g.has_edge("w1", "w2")


class TestMaterializedInputs:
    def test_source_task_created(self):
        b = build(materialize=True)
        b.add_object("a")
        b.add_task("r", reads=("a",))
        g = b.build()
        src = source_task_name("a")
        assert g.has_task(src)
        assert is_source_task(src)
        assert g.has_edge(src, "r")
        assert g.task(src).weight == 0.0

    def test_source_created_once(self):
        b = build(materialize=True)
        b.add_object("a")
        b.add_task("r1", reads=("a",))
        b.add_task("r2", reads=("a",))
        g = b.build()
        assert g.num_tasks == 3

    def test_no_source_when_written_first(self):
        b = build(materialize=True)
        b.add_object("a")
        b.add_task("w", writes=("a",))
        b.add_task("r", reads=("a",))
        g = b.build()
        assert not g.has_task(source_task_name("a"))

    def test_read_before_write_no_materialize(self):
        b = build(materialize=False)
        b.add_object("a")
        b.add_task("r", reads=("a",))
        g = b.build()
        assert g.in_degree("r") == 0


class TestCommutingGroups:
    def grp(self):
        b = build()
        b.add_object("acc")
        b.add_object("x")
        b.add_object("y")
        b.add_task("init", writes=("acc",))
        b.add_task("px", writes=("x",))
        b.add_task("py", writes=("y",))
        b.add_task("u1", reads=("x", "acc"), writes=("acc",), commute="g")
        b.add_task("u2", reads=("y", "acc"), writes=("acc",), commute="g")
        b.add_task("r", reads=("acc",))
        return b.build()

    def test_no_edges_between_members(self):
        g = self.grp()
        assert not g.has_edge("u1", "u2") and not g.has_edge("u2", "u1")

    def test_members_depend_on_base(self):
        g = self.grp()
        assert g.has_edge("init", "u1") and g.has_edge("init", "u2")

    def test_reader_depends_on_all_members(self):
        g = self.grp()
        assert g.has_edge("u1", "r") and g.has_edge("u2", "r")

    def test_group_closed_by_writer(self):
        """A non-member writer closes the group and depends on every
        member (true edge via its read)."""
        b = build()
        b.add_object("acc")
        b.add_task("init", writes=("acc",))
        b.add_task("u1", reads=("acc",), writes=("acc",), commute="g")
        b.add_task("u2", reads=("acc",), writes=("acc",), commute="g")
        b.add_task("w", reads=("acc",), writes=("acc",))  # not in group
        g = b.build()
        assert g.has_edge("u1", "w") and g.has_edge("u2", "w")

    def test_group_reopen_rejected(self):
        b = build()
        b.add_object("acc")
        b.add_task("init", writes=("acc",))
        b.add_task("u1", reads=("acc",), writes=("acc",), commute="g")
        b.add_task("w", reads=("acc",), writes=("acc",))
        with pytest.raises(GraphError):
            b.add_task("u2", reads=("acc",), writes=("acc",), commute="g")

    def test_two_groups_different_objects(self):
        b = build()
        b.add_object("a")
        b.add_object("b")
        b.add_task("ia", writes=("a",))
        b.add_task("ib", writes=("b",))
        b.add_task("ua", reads=("a",), writes=("a",), commute="ga")
        b.add_task("ub", reads=("b",), writes=("b",), commute="gb")
        g = b.build()
        assert not g.has_edge("ua", "ub") and not g.has_edge("ub", "ua")


class TestBuilderLifecycle:
    def test_no_add_after_build(self):
        b = build()
        b.add_object("a")
        b.build()
        with pytest.raises(GraphError):
            b.add_task("t", writes=("a",))

    def test_build_freezes(self):
        b = build()
        b.add_object("a")
        g = b.build()
        assert g.frozen
