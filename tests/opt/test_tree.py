"""Tests of the tree-specialised ordering (:mod:`repro.core.treesched`)."""

import pytest

from repro.core import (
    analyze_memory,
    cyclic_placement,
    gantt,
    liu_postorder,
    mpo_order,
    owner_compute_assignment,
    tree_order,
)
from repro.experiments import ExperimentContext
from repro.graph import generators as gen
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.opt.exact import solve

TINY_TREES = [
    ("chain4", lambda: gen.chain(4, size=2)),
    ("chain6", lambda: gen.chain(6)),
    ("in2", lambda: gen.in_tree(2, size=2)),
    ("in3", lambda: gen.in_tree(3)),
    ("out2", lambda: gen.out_tree(2, size=2)),
    ("out3", lambda: gen.out_tree(3)),
]


def tree_case(build, procs):
    g = build()
    pl = cyclic_placement(g, procs)
    return g, pl, owner_compute_assignment(g, pl)


class TestLiuPostorder:
    @pytest.mark.parametrize("name,build", TINY_TREES)
    def test_is_a_topological_permutation(self, name, build):
        g, pl, asg = tree_case(build, 2)
        order = liu_postorder(g, pl, asg)
        assert sorted(order) == sorted(t.name for t in g.tasks())
        pos = {t: i for i, t in enumerate(order)}
        for u, v, _objs in g.edges():
            assert pos[u] < pos[v]


class TestTreeOrder:
    def test_valid_on_the_paper_example(self):
        g = paper_example_graph()
        pl = paper_placement()
        s = tree_order(g, pl, paper_assignment(g, pl))
        s.validate()
        assert s.meta["heuristic"] == "TREE"
        assert s.meta["tree_variant"] in ("liu-postorder", "program-order")

    @pytest.mark.parametrize("seed", range(5))
    def test_valid_on_general_dags(self, seed):
        # Not a tree at all — the projection must still be a legal
        # schedule (it serialises a topological order per processor).
        g = gen.random_trace(30, 6, seed=seed)
        pl = cyclic_placement(g, 3)
        s = tree_order(g, pl, owner_compute_assignment(g, pl))
        s.validate()
        assert gantt(s).makespan > 0

    @pytest.mark.parametrize("procs", (2, 3))
    @pytest.mark.parametrize("name,build", TINY_TREES)
    def test_matches_proved_memory_optimum_on_tiny_trees(
        self, name, build, procs
    ):
        g, pl, asg = tree_case(build, procs)
        res = solve(g, pl, asg, objective="memory")
        assert res.proved
        assert analyze_memory(tree_order(g, pl, asg)).min_mem == res.value


class TestElimTreeWorkload:
    @pytest.fixture(scope="class")
    def etree15(self):
        ctx = ExperimentContext()
        prob = ctx.problem("etree15")
        return ctx, prob

    @pytest.mark.parametrize("procs", (2, 4))
    def test_peak_no_worse_than_mpo(self, etree15, procs):
        ctx, prob = etree15
        pl = prob.placement(procs)
        asg = prob.assignment(pl)
        comm = ctx.spec.comm_model()
        tree_peak = analyze_memory(
            tree_order(prob.graph, pl, asg, comm)
        ).min_mem
        mpo_peak = analyze_memory(
            mpo_order(prob.graph, pl, asg, comm)
        ).min_mem
        assert tree_peak <= mpo_peak

    def test_workload_shape(self, etree15):
        _ctx, prob = etree15
        assert prob.n == prob.graph.num_tasks == prob.graph.num_objects
        # md ordering must leave actual tree parallelism (the natural
        # band ordering degenerates to a path).
        parent_of = prob.parent
        children = [0] * len(parent_of)
        for v, p in enumerate(parent_of):
            if p != -1:
                children[p] += 1
        assert max(children) >= 2
