"""Unit tests of the exact branch-and-bound (:mod:`repro.opt.exact`)."""

import pytest

from repro.core import (
    analyze_memory,
    block_placement,
    cyclic_placement,
    gantt,
    owner_compute_assignment,
)
from repro.errors import SchedulingError
from repro.graph import generators as gen
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.opt.exact import (
    BEST_FOUND,
    PROVED_OPTIMAL,
    SEED_HEURISTICS,
    exact_order,
    solve,
    solve_over_placements,
)


@pytest.fixture(scope="module")
def paper_case():
    g = paper_example_graph()
    pl = paper_placement()
    return g, pl, paper_assignment(g, pl)


class TestPaperExample:
    def test_time_objective_proves_16(self, paper_case):
        res = solve(*paper_case, objective="time")
        assert res.status == PROVED_OPTIMAL
        assert res.value == pytest.approx(16.0, abs=1e-9)
        assert gantt(res.schedule).makespan == pytest.approx(res.value)

    def test_memory_objective_proves_the_dts_value(self, paper_case):
        # The paper's Figure 5 DTS schedule reaches MIN_MEM 7; the
        # solver proves no schedule of this mapping does better.
        res = solve(*paper_case, objective="memory")
        assert res.status == PROVED_OPTIMAL
        assert res.value == 7
        assert analyze_memory(res.schedule).min_mem == 7

    def test_lower_bound_matches_value_when_proved(self, paper_case):
        for objective in ("time", "memory"):
            res = solve(*paper_case, objective=objective)
            assert res.proved
            assert res.lower_bound <= res.value + 1e-9

    def test_incumbent_source_is_a_seed_or_the_search(self, paper_case):
        res = solve(*paper_case, objective="memory")
        assert res.incumbent_source in SEED_HEURISTICS + ("search",)


class TestExactOrder:
    def test_meta_records_the_certificate(self, paper_case):
        s = exact_order(*paper_case, objective="memory")
        assert s.meta["heuristic"] == "EXACT"
        assert s.meta["exact_objective"] == "memory"
        assert s.meta["exact_status"] == PROVED_OPTIMAL
        assert s.meta["exact_lower_bound"] <= 7
        s.validate()

    def test_infeasible_capacity_raises(self, paper_case):
        g, pl, asg = paper_case
        opt = int(solve(g, pl, asg, objective="memory").value)
        with pytest.raises(SchedulingError):
            exact_order(g, pl, asg, objective="memory", capacity=opt - 1)

    def test_capacity_at_optimum_is_schedulable(self, paper_case):
        g, pl, asg = paper_case
        s = exact_order(g, pl, asg, objective="memory", capacity=7)
        assert analyze_memory(s).min_mem <= 7


class TestArguments:
    def test_unknown_objective_raises(self, paper_case):
        with pytest.raises(ValueError, match="objective"):
            solve(*paper_case, objective="latency")

    def test_empty_placement_cases_raise(self, paper_case):
        with pytest.raises(ValueError):
            solve_over_placements(paper_case[0], [])


class TestBudget:
    def test_exhaustion_degrades_to_best_found(self):
        g = gen.random_trace(24, 6, seed=3)
        pl = cyclic_placement(g, 3)
        asg = owner_compute_assignment(g, pl)
        res = solve(g, pl, asg, objective="time", node_budget=5)
        assert res.status == BEST_FOUND
        assert res.nodes <= 5
        assert res.schedule is not None
        assert res.lower_bound <= res.value + 1e-9

    def test_budget_is_recorded(self, paper_case):
        res = solve(*paper_case, objective="time", node_budget=123)
        assert res.node_budget == 123


class TestOverPlacements:
    def test_best_of_cyclic_and_block(self, paper_case):
        g = paper_case[0]
        cases = []
        for make in (cyclic_placement, block_placement):
            pl = make(g, 2)
            cases.append((pl, owner_compute_assignment(g, pl)))
        best = solve_over_placements(g, cases, objective="memory")
        singles = [
            solve(g, pl, asg, objective="memory") for pl, asg in cases
        ]
        assert best.value == min(s.value for s in singles)
        assert best.proved
