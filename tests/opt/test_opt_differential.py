"""Cross-layer differential checks for the new heuristics.

Every schedule the new orderings (etf / tree / exact) produce must run
clean through the *whole* verification stack built in earlier PRs:

* the static analyzer (0 error-severity SA* findings),
* the conformance invariant checker + differential oracle,
* the array-compiled engine (exact equality with the interpreted one).
"""

import dataclasses

import pytest

from repro.analysis import analyze_schedule
from repro.conformance import run_check
from repro.core import cyclic_placement, owner_compute_assignment
from repro.errors import DeadlockError, SimulationError
from repro.graph import generators as gen
from repro.graph.paper_example import (
    paper_assignment,
    paper_example_graph,
    paper_placement,
)
from repro.machine import UNIT_MACHINE, Simulator
from repro.machine.simulator import CompiledSchedule, ProcessorStats
from repro.rapid.inspector import order_with

NEW_HEURISTICS = ("etf", "tree", "exact")
STAT_FIELDS = [f.name for f in dataclasses.fields(ProcessorStats)]


def cases():
    g = paper_example_graph()
    pl = paper_placement()
    yield "paper", g, pl, paper_assignment(g, pl)
    g = gen.random_trace(25, 5, seed=11)
    pl = cyclic_placement(g, 3)
    yield "trace25", g, pl, owner_compute_assignment(g, pl)


def schedules():
    for label, g, pl, asg in cases():
        for h in NEW_HEURISTICS:
            yield pytest.param(
                order_with(h, g, pl, asg), id=f"{label}-{h}"
            )


def assert_engines_agree(compiled, capacity):
    outcomes = {}
    for engine in ("interpreted", "compiled"):
        try:
            outcomes[engine] = ("ok", Simulator(
                spec=UNIT_MACHINE, capacity=capacity,
                compiled=compiled, engine=engine,
            ).run())
        except (SimulationError, DeadlockError) as e:
            outcomes[engine] = (type(e).__name__, str(e))
    ka, kb = outcomes["interpreted"], outcomes["compiled"]
    if ka[0] != "ok" or kb[0] != "ok":
        assert ka == kb
        return
    ra, rb = ka[1], kb[1]
    assert rb.engine == "compiled", "compiled run silently fell back"
    assert ra.parallel_time == rb.parallel_time
    assert ra.task_finish_time == rb.task_finish_time
    for sa, sb in zip(ra.stats, rb.stats):
        for f in STAT_FIELDS:
            assert getattr(sa, f) == getattr(sb, f), f


@pytest.mark.parametrize("schedule", list(schedules()))
class TestNewHeuristicSchedules:
    def test_static_analyzer_is_clean(self, schedule):
        report = analyze_schedule(schedule, fraction=1.0)
        assert report.ok, [str(d) for d in report.errors]

    def test_conformance_check_is_clean(self, schedule):
        report = run_check(schedule)
        assert report.ok, report.summary()
        assert not report.violations

    def test_compiled_engine_matches_interpreted(self, schedule):
        cs = CompiledSchedule(schedule)
        prof = cs.profile
        for cap in sorted({prof.min_mem, (prof.min_mem + prof.tot) // 2,
                           prof.tot}):
            assert_engines_agree(cs, cap)
