"""Smoke tests: the example scripts must run end to end.

The two fast examples run in the default suite; the longer sweeps are
marked ``slow`` (deselect with ``-m 'not slow'`` if needed; they still
complete in tens of seconds).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "sum = 10.0 (correct)" in out

    def test_paper_example(self, capsys):
        out = run_example("paper_example.py", capsys)
        assert "MIN_MEM = 9" in out
        assert "MIN_MEM = 7 (paper: 7)" in out
        assert "d1 -> d3 -> d4 -> d5 -> d7 -> d8 -> d2" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_sparse_cholesky(self, capsys):
        out = run_example("sparse_cholesky.py", capsys)
        assert "numeric |LL^T - A|" in out

    def test_sparse_lu(self, capsys):
        out = run_example("sparse_lu.py", capsys)
        assert "new scheme" in out

    def test_memory_scalability(self, capsys):
        out = run_example("memory_scalability.py", capsys)
        assert "sparse Cholesky" in out and "sparse LU" in out

    def test_nbody(self, capsys):
        out = run_example("nbody_timesteps.py", capsys)
        assert "trajectory error" in out

    def test_newton(self, capsys):
        out = run_example("newton_method.py", capsys)
        assert "converged" in out
