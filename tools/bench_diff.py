#!/usr/bin/env python
"""Machine-readable comparator for ``repro-bench-sweep/*`` documents.

``BENCH_sweep.json`` is the committed scorecard of the repository's
performance claims (see ``benchmarks/bench_sweep_engine.py``); until
now a trend regression — the compiled-engine speedup eroding, the
supervised or tracing overhead creeping up — could only be caught by a
human reading two JSON files.  This tool diffs a baseline document
against a current one:

* **per-section deltas** for every shared numeric leaf (dotted paths,
  lists skipped), printed compactly and exported via ``--json``;
* **schema growth is tolerated**: keys only in the current document are
  reported as *added*, keys only in the baseline as *removed* — neither
  fails the diff on its own;
* **gates**: a configurable set of watched paths with a direction
  (``max`` = higher is a regression, ``min`` = lower is) and a
  multiplicative tolerance.  Any breached gate exits non-zero unless
  ``--report-only``.

Usage::

    python tools/bench_diff.py BASELINE.json CURRENT.json
    python tools/bench_diff.py BENCH_sweep.json BENCH_sweep.json  # exit 0
    python tools/bench_diff.py base.json cur.json --tolerance 1.2 \
        --gate engines.gate.speedup=1.5 --report-only --json

Exit status: 0 = no gate breached (or ``--report-only``), 1 = at least
one gate breached (or a gated path vanished from the current document),
2 = usage / load error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

#: Documents must share this schema family (any version).
SCHEMA_PREFIX = "repro-bench-sweep/"

#: Default multiplicative tolerance: a ``max`` gate fails when
#: ``current > baseline * tolerance``; a ``min`` gate when
#: ``current < baseline / tolerance``.  Generous because the committed
#: baseline and CI run on different hardware — the gate is a *trend*
#: guard, not a microbenchmark assertion.
DEFAULT_TOLERANCE = 1.30

#: Watched paths -> direction.  ``max``: the value is a cost (time,
#: overhead ratio) and growing past tolerance is a regression.
#: ``min``: the value is a win (speedup) and shrinking past tolerance
#: is a regression.  Paths missing from the *baseline* are skipped
#: (schema growth: an old baseline predates the section); paths missing
#: from the *current* document fail — a silently vanished claim is
#: itself a regression.
DEFAULT_GATES: dict[str, str] = {
    "instrumentation.null_vs_plain": "max",
    "instrumentation.metrics_vs_plain": "max",
    "conformance.null_faults_vs_plain": "max",
    "conformance.checked_vs_plain": "max",
    "analysis.checked_vs_analyze": "min",
    "bounds.bounds_paper_s": "max",
    "bounds.etree_vs_analyze": "min",
    "engines.gate.speedup": "min",
    "runtime.supervised_vs_plain": "max",
    "obs.traced_vs_plain": "max",
    "sweep.serial_s": "max",
    "sweep.parallel_s": "max",
    "opt.exact_paper_s": "max",
}


def load_bench(path: str) -> dict:
    """Load one bench document, validating the schema family."""
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not isinstance(schema, str) or not schema.startswith(SCHEMA_PREFIX):
        raise ValueError(
            f"{path}: schema {schema!r} is not a {SCHEMA_PREFIX}* document"
        )
    return doc


def flatten(doc, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict as ``section.key`` paths.

    Lists are skipped (``sweep.cells`` style payloads would swamp the
    report); bools are skipped (not trend quantities); non-numeric
    leaves (schema strings, hostnames) are skipped.
    """
    out: dict[str, float] = {}
    if not isinstance(doc, dict):
        return out
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def diff_sections(base: dict[str, float], cur: dict[str, float]) -> dict:
    """Shared/added/removed paths and per-path ratios."""
    shared = sorted(set(base) & set(cur))
    deltas = {}
    for path in shared:
        b, c = base[path], cur[path]
        ratio: Optional[float]
        if b == 0:
            ratio = None if c == 0 else float("inf")
        else:
            ratio = c / b
        deltas[path] = {"base": b, "cur": c, "ratio": ratio}
    return {
        "deltas": deltas,
        "added": sorted(set(cur) - set(base)),
        "removed": sorted(set(base) - set(cur)),
    }


def apply_gates(
    base: dict[str, float],
    cur: dict[str, float],
    gates: dict[str, str],
    tolerance: float,
    overrides: Optional[dict[str, float]] = None,
) -> list[dict]:
    """Evaluate every gate; returns one verdict row per watched path."""
    overrides = overrides or {}
    rows = []
    for path in sorted(gates):
        direction = gates[path]
        tol = overrides.get(path, tolerance)
        row = {
            "path": path,
            "direction": direction,
            "tolerance": tol,
            "base": base.get(path),
            "cur": cur.get(path),
        }
        if path not in base:
            # Schema growth: the baseline predates this claim.
            row["status"] = "skipped"
        elif path not in cur:
            # The current document dropped a gated claim — that is a
            # regression of coverage, not growth.
            row["status"] = "missing"
        else:
            b, c = base[path], cur[path]
            if direction == "max":
                ok = c <= b * tol
            else:
                ok = c >= b / tol
            row["status"] = "ok" if ok else "breached"
        rows.append(row)
    return rows


def render_report(diff: dict, verdicts: list[dict]) -> str:
    lines = []
    deltas = diff["deltas"]
    by_section: dict[str, list[str]] = {}
    for path, d in deltas.items():
        section = path.split(".", 1)[0]
        ratio = d["ratio"]
        if ratio is not None and abs(ratio - 1.0) < 0.01:
            continue  # unchanged within 1%: noise, not signal
        shown = "n/a" if ratio is None else f"x{ratio:.3f}"
        by_section.setdefault(section, []).append(
            f"  {path}: {d['base']:g} -> {d['cur']:g} ({shown})"
        )
    if by_section:
        lines.append("changed values (>1%):")
        for section in sorted(by_section):
            lines.extend(by_section[section])
    else:
        lines.append("no numeric value changed by more than 1%")
    if diff["added"]:
        lines.append(f"added keys ({len(diff['added'])}): "
                     + ", ".join(diff["added"][:12])
                     + ("..." if len(diff["added"]) > 12 else ""))
    if diff["removed"]:
        lines.append(f"removed keys ({len(diff['removed'])}): "
                     + ", ".join(diff["removed"][:12])
                     + ("..." if len(diff["removed"]) > 12 else ""))
    lines.append("gates:")
    for row in verdicts:
        flag = {"ok": "PASS", "skipped": "SKIP", "missing": "FAIL",
                "breached": "FAIL"}[row["status"]]
        detail = ""
        if row["status"] in ("ok", "breached"):
            detail = (f" base={row['base']:g} cur={row['cur']:g} "
                      f"{row['direction']} tol=x{row['tolerance']:g}")
        elif row["status"] == "missing":
            detail = " (gated path missing from current document)"
        lines.append(f"  [{flag}] {row['path']}{detail}")
    return "\n".join(lines)


def parse_gate_overrides(specs) -> dict[str, float]:
    out: dict[str, float] = {}
    for spec in specs or ():
        path, sep, tol = spec.partition("=")
        if not sep:
            raise ValueError(
                f"bad --gate {spec!r}; expected PATH=TOLERANCE"
            )
        out[path] = float(tol)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff",
        description="Diff two repro-bench-sweep JSON documents and gate "
                    "trend regressions.",
    )
    parser.add_argument("baseline", help="baseline bench JSON (committed)")
    parser.add_argument("current", help="current bench JSON (fresh run)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="multiplicative slack of every gate "
                             f"(default {DEFAULT_TOLERANCE:g})")
    parser.add_argument("--gate", action="append", default=None,
                        metavar="PATH=TOL",
                        help="override the tolerance of one gated path; "
                             "repeatable")
    parser.add_argument("--report-only", action="store_true",
                        help="print the report but always exit 0 on "
                             "breaches (load errors still exit 2)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable report instead of "
                             "text")
    args = parser.parse_args(argv)

    try:
        overrides = parse_gate_overrides(args.gate)
        base_doc = load_bench(args.baseline)
        cur_doc = load_bench(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    base = flatten(base_doc)
    cur = flatten(cur_doc)
    diff = diff_sections(base, cur)
    verdicts = apply_gates(base, cur, DEFAULT_GATES, args.tolerance,
                           overrides)
    breached = [r for r in verdicts if r["status"] in ("breached", "missing")]
    if args.as_json:
        print(json.dumps(
            {
                "schema": "repro-bench-diff/1",
                "baseline_schema": base_doc.get("schema"),
                "current_schema": cur_doc.get("schema"),
                "diff": diff,
                "gates": verdicts,
                "ok": not breached,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_report(diff, verdicts))
        if breached:
            print(f"{len(breached)} gate(s) breached", file=sys.stderr)
    if breached and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())