#!/usr/bin/env python3
"""Repo-specific AST lint rules (run in CI next to ruff).

Seven invariants of this codebase that generic linters cannot express:

``private-mutation``
    Outside ``src/repro/machine/``, no code may assign to, aug-assign
    to, or delete a private attribute (leading ``_``) of any object
    other than ``self``/``cls``.  The simulator's run-state is mutated
    only inside the machine package; observers use Instrument hooks and
    static checks use the ``repro.analysis`` IR passes instead of
    poking ``Simulator`` internals.

``wallclock-in-core``
    ``src/repro/core/`` holds the *static* scheduling passes; they must
    be bit-deterministic.  Importing ``time`` or ``random`` (or using
    ``numpy.random``) there is forbidden — seeded randomness lives in
    the graph generators and the conformance fault injector.

``compiled-hot-alloc``
    In ``src/repro/machine/compiled*.py``, functions whose name ends in
    ``_hot`` are the per-event / per-task kernels of the array-compiled
    engine.  Their loops must not allocate Python objects: no calls, no
    list/tuple/dict/set displays, no comprehensions, lambdas, f-strings
    or starred expressions inside a ``for``/``while`` body.  Allocating
    per event is exactly the interpreter overhead the engine exists to
    remove, and the benchmark's >=10x gate on the silent-dominated cell
    depends on it.  (Code *outside* the loops — setup and the return —
    may allocate freely.)

``swallowed-exception``
    Bare ``except:`` and ``except Exception/BaseException: pass`` are
    forbidden everywhere.  The fault-tolerant sweep runtime records
    failures as structured data (``CellFailure``/``WorkerError``);
    silently swallowing an exception is how a harness loses exactly the
    failure it exists to report.  Narrow handlers and handlers that do
    something (convert, log, re-raise) are fine.

``naked-sleep``
    ``time.sleep`` is forbidden outside
    ``src/repro/experiments/runtime.py``.  All waiting — retry backoff,
    timeout polling, injected hangs — is centralised in the supervised
    runtime so its determinism and budgets stay auditable; ad-hoc
    sleeps elsewhere are latent flakes.

``wallclock-span``
    Inside ``src/repro/``, ``time.time()`` and ``datetime.now()`` (and
    friends: ``utcnow``, ``today``, ``from time import time``) are
    forbidden outside ``src/repro/obs/`` and
    ``src/repro/experiments/runtime.py``.  Every span and duration in
    the runtime trace is measured on the monotonic clock
    (``time.monotonic`` / ``time.perf_counter``); the wall clock is
    read exactly once per trace shard (the header's ``wall0``) so the
    merger can align shards from different processes.  A stray
    ``time.time()`` span silently breaks under clock adjustment and
    cannot be aligned cross-process.

``rule-registry-sync``
    The diagnostic registry (``src/repro/analysis/diagnostics.py``) and
    the rule-catalogue table in ``docs/analysis.md`` must list exactly
    the same ``SAxxx`` codes.  A rule shipped without documentation —
    or a documented code with no registry entry — is drift the SARIF
    driver and the docs would silently disagree on.  (Whole-repo check;
    it runs once per lint invocation, not per file.)

Usage::

    python tools/lint_rules.py            # lint the repo, exit 1 on findings
    python tools/lint_rules.py PATH...    # lint specific files
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import Iterable, Optional

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Directories scanned by default (relative to the repo root).
DEFAULT_SCOPE = ("src", "tests", "benchmarks", "tools")

#: The one package allowed to mutate private simulator state.
MACHINE_PREFIX = pathlib.PurePosixPath("src/repro/machine")

#: The deterministic core; no wall clock, no RNG.
CORE_PREFIX = pathlib.PurePosixPath("src/repro/core")

FORBIDDEN_CORE_MODULES = {"time", "random"}


def _receiver_name(node: ast.expr) -> Optional[str]:
    return node.id if isinstance(node, ast.Name) else None


def _private_attr_targets(stmt: ast.stmt) -> Iterable[ast.Attribute]:
    """Attribute nodes written/deleted by ``stmt``."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for t in targets:
        # Unpack tuple/list targets: ``a.x, b._y = ...``
        stack = [t]
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.Tuple, ast.List)):
                stack.extend(n.elts)
            elif isinstance(n, ast.Starred):
                stack.append(n.value)
            elif isinstance(n, ast.Attribute):
                yield n


def check_private_mutation(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``private-mutation`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                 ast.Delete)):
            continue
        for attr in _private_attr_targets(node):
            if not attr.attr.startswith("_"):
                continue
            if attr.attr.startswith("__") and attr.attr.endswith("__"):
                continue  # dunder metadata (functools.wraps-style) is fine
            recv = _receiver_name(attr.value)
            if recv in ("self", "cls"):
                continue
            out.append((
                attr.lineno,
                f"private-mutation: writes {recv or '<expr>'}.{attr.attr} "
                f"outside {MACHINE_PREFIX}/ — use the public API or an "
                "Instrument hook",
            ))
    return out


def check_wallclock_in_core(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``wallclock-in-core`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_CORE_MODULES:
                    out.append((
                        node.lineno,
                        f"wallclock-in-core: imports {alias.name!r}; core "
                        "scheduling passes must be deterministic",
                    ))
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in FORBIDDEN_CORE_MODULES and node.level == 0:
                out.append((
                    node.lineno,
                    f"wallclock-in-core: imports from {node.module!r}; core "
                    "scheduling passes must be deterministic",
                ))
        elif isinstance(node, ast.Attribute) and node.attr == "random":
            recv = _receiver_name(node.value)
            if recv in ("np", "numpy"):
                out.append((
                    node.lineno,
                    "wallclock-in-core: uses numpy.random; seeded RNG "
                    "belongs in the generators / fault injector",
                ))
    return out


#: AST node types that allocate a fresh Python object on evaluation.
_ALLOCATING_NODES = (
    ast.Call, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Lambda, ast.JoinedStr, ast.Starred,
)
_DISPLAY_NODES = (ast.List, ast.Tuple, ast.Dict, ast.Set)


def _is_compiled_module(rel: str) -> bool:
    p = pathlib.PurePosixPath(rel)
    return (
        p.is_relative_to(MACHINE_PREFIX)
        and p.name.startswith("compiled")
        and p.suffix == ".py"
    )


def check_compiled_hot_alloc(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``compiled-hot-alloc`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not fn.name.endswith("_hot"):
            continue
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                bad = isinstance(node, _ALLOCATING_NODES) or (
                    isinstance(node, _DISPLAY_NODES)
                    and isinstance(getattr(node, "ctx", None), ast.Load)
                )
                if bad:
                    out.append((
                        node.lineno,
                        f"compiled-hot-alloc: {type(node).__name__} inside a "
                        f"loop of hot kernel {fn.name}(); per-event object "
                        "allocation is forbidden in the compiled engine's "
                        "hot loops",
                    ))
    return out


#: The one module allowed to call ``time.sleep`` (the supervised sweep
#: runtime centralises every wait: backoff, polling, injected hangs).
RUNTIME_MODULE = pathlib.PurePosixPath("src/repro/experiments/runtime.py")

_BROAD_EXC_NAMES = {"Exception", "BaseException"}


def _is_noop_body(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing: only ``pass`` / ``...``."""
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


def check_swallowed_exception(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``swallowed-exception`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            out.append((
                node.lineno,
                "swallowed-exception: bare 'except:' — name the exception "
                "types; failures must surface as structured data, not "
                "vanish",
            ))
            continue
        exc = node.type
        broad = (
            isinstance(exc, ast.Name) and exc.id in _BROAD_EXC_NAMES
        ) or (
            isinstance(exc, ast.Tuple)
            and any(isinstance(e, ast.Name) and e.id in _BROAD_EXC_NAMES
                    for e in exc.elts)
        )
        if broad and _is_noop_body(node.body):
            out.append((
                node.lineno,
                "swallowed-exception: 'except Exception: pass' silently "
                "discards the failure — handle it, convert it, or narrow "
                "the type",
            ))
    return out


#: Wall-clock reads are confined to the trace layer (``obs/``) and the
#: supervised runtime; everywhere else in ``src/repro/`` spans must use
#: the monotonic clock.
SRC_PREFIX = pathlib.PurePosixPath("src/repro")
OBS_PREFIX = pathlib.PurePosixPath("src/repro/obs")

_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_DATETIME_RECEIVERS = {"datetime", "datetime.datetime"}


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as ``"a.b.c"`` when every link is a Name/Attribute."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def check_wallclock_span(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``wallclock-span`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    msg = (
        "wallclock-span: {what} outside obs/ and experiments/runtime.py — "
        "spans use time.monotonic()/perf_counter(); the wall clock is "
        "read once per trace shard (header wall0)"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if node.attr == "time" and _receiver_name(node.value) == "time":
                out.append((node.lineno, msg.format(what="time.time")))
            elif node.attr in _WALLCLOCK_DATETIME_ATTRS:
                recv = _dotted_name(node.value)
                if recv in _DATETIME_RECEIVERS:
                    out.append((
                        node.lineno,
                        msg.format(what=f"{recv}.{node.attr}"),
                    ))
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "time" and any(
                alias.name == "time" for alias in node.names
            ):
                out.append(
                    (node.lineno, msg.format(what="'from time import time'"))
                )
    return out


def check_naked_sleep(tree: ast.AST, path: str) -> list[tuple[int, str]]:
    """``naked-sleep`` findings as ``(lineno, message)``."""
    out: list[tuple[int, str]] = []
    msg = (
        "naked-sleep: time.sleep outside experiments/runtime.py — waits "
        "(backoff, polling) belong in the supervised sweep runtime"
    )
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute) and node.attr == "sleep"
                and _receiver_name(node.value) == "time"):
            out.append((node.lineno, msg))
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "time" and any(
                alias.name == "sleep" for alias in node.names
            ):
                out.append((node.lineno, msg))
    return out


#: The diagnostic registry and its human-readable catalogue; the two
#: must list exactly the same SAxxx codes.
RULE_REGISTRY = pathlib.PurePosixPath("src/repro/analysis/diagnostics.py")
RULE_CATALOGUE = pathlib.PurePosixPath("docs/analysis.md")

_SA_STRING = re.compile(r'"(SA\d{3})"')
_SA_TABLE_ROW = re.compile(r"^\|\s*(SA\d{3})\s*\|")


def check_rule_registry_sync(repo: pathlib.Path = REPO) -> list[str]:
    """``rule-registry-sync`` findings (whole-repo, not per-file)."""
    registry = set(_SA_STRING.findall((repo / RULE_REGISTRY).read_text()))
    documented = {
        m.group(1)
        for line in (repo / RULE_CATALOGUE).read_text().splitlines()
        if (m := _SA_TABLE_ROW.match(line))
    }
    out = [
        f"{RULE_CATALOGUE}:1: rule-registry-sync: {code} is registered in "
        f"{RULE_REGISTRY} but has no rule-catalogue table row"
        for code in sorted(registry - documented)
    ] + [
        f"{RULE_CATALOGUE}:1: rule-registry-sync: table row {code} has no "
        f"registry entry in {RULE_REGISTRY}"
        for code in sorted(documented - registry)
    ]
    return out


def lint_file(path: pathlib.Path, repo: pathlib.Path = REPO) -> list[str]:
    rel = pathlib.PurePosixPath(path.resolve().relative_to(repo).as_posix())
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as err:  # pragma: no cover - CI surfaces it via ruff
        return [f"{rel}:{err.lineno}: syntax error: {err.msg}"]
    findings: list[tuple[int, str]] = []
    if not rel.is_relative_to(MACHINE_PREFIX):
        findings += check_private_mutation(tree, str(rel))
    if rel.is_relative_to(CORE_PREFIX):
        findings += check_wallclock_in_core(tree, str(rel))
    if _is_compiled_module(str(rel)):
        findings += check_compiled_hot_alloc(tree, str(rel))
    findings += check_swallowed_exception(tree, str(rel))
    if rel != RUNTIME_MODULE:
        findings += check_naked_sleep(tree, str(rel))
    if (rel.is_relative_to(SRC_PREFIX)
            and not rel.is_relative_to(OBS_PREFIX)
            and rel != RUNTIME_MODULE):
        findings += check_wallclock_span(tree, str(rel))
    return [f"{rel}:{line}: {msg}" for line, msg in sorted(findings)]


def iter_default_files(repo: pathlib.Path = REPO) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for scope in DEFAULT_SCOPE:
        root = repo / scope
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    return files


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [pathlib.Path(a) for a in argv] or iter_default_files()
    findings: list[str] = []
    if not argv:  # whole-repo checks only on full lints
        findings.extend(check_rule_registry_sync())
    for f in files:
        findings.extend(lint_file(f))
    for line in findings:
        print(line)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
