"""Ablation — data renaming (multi-buffering) vs allocated-once volatiles.

Section 3.1: "Data renaming would avoid this [stale address] problem,
but it creates more complexity in indexing data objects and memory
optimization."  RAPID's design keeps one buffer per volatile object;
this ablation measures what that choice trades: on a producer/consumer
pipeline unrolled over iterations, double buffering removes the
write-after-read handshake (better pipelining) at k-times the data
footprint.
"""

from repro.core import analyze_memory, gantt, mpo_order, owner_compute_assignment
from repro.core.placement import placement_from_dict
from repro.experiments.report import render_table
from repro.graph import GraphBuilder
from repro.graph.renaming import rename_versions
from repro.graph.repeat import repeat_graph


def pipeline_graph(iterations: int):
    b = GraphBuilder(materialize_inputs=False)
    for o in ("a", "b", "c"):
        b.add_object(o, 64)
    b.add_task("s1", writes=("a",), weight=1.0)
    b.add_task("s2", reads=("a",), writes=("b",), weight=1.0)
    b.add_task("s3", reads=("b",), writes=("c",), weight=1.0)
    return repeat_graph(b.build(), iterations)


def schedule(g):
    owner = {}
    for o in g.objects():
        owner[o.name] = {"a": 0, "b": 1, "c": 2}[o.name[0]]
    pl = placement_from_dict(3, owner)
    return mpo_order(g, pl, owner_compute_assignment(g, pl))


def test_renaming_tradeoff(benchmark, ctx, record):
    g = pipeline_graph(iterations=12)

    def sweep():
        rows = []
        for k in (1, 2, 3):
            r = rename_versions(g, buffers=k, objects=["a", "b", "c"]) if k > 1 else g
            s = schedule(r)
            rows.append(
                (k, gantt(s).makespan, analyze_memory(s).min_mem)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_renaming",
        render_table(
            ["buffers", "pipelined PT", "MIN_MEM (B)"],
            [[str(k), f"{pt:g}", str(m)] for k, pt, m in rows],
            title="Ablation: data renaming vs allocated-once volatiles "
            "(3-stage pipeline x12 iterations)",
        ),
    )
    pts = [pt for _k, pt, _m in rows]
    mems = [m for _k, _pt, m in rows]
    assert pts[1] <= pts[0]  # double buffering pipelines better
    assert mems[1] > mems[0]  # ... and costs memory
