"""Table 4 — parallel times: RCP vs MPO under memory constraints.

Paper finding ("the result is surprising"): the difference is negligible
and MPO sometimes wins despite worse predicted times — it needs fewer
MAPs and improves temporal locality.  ``*`` cells mark capacities where
MPO runs but RCP does not.
"""

from repro.experiments import table4


def test_table4_cholesky(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table4(ctx, "cholesky"), rounds=1, iterations=1
    )
    record("table4_cholesky", result.render())
    vals = [v for v in result.entries.values() if isinstance(v, float)]
    assert vals
    # negligible differences: average within +-15%.
    assert abs(sum(vals) / len(vals)) < 0.15
    # MPO extends executability somewhere.
    assert "*" in result.entries.values()


def test_table4_lu(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table4(ctx, "lu"), rounds=1, iterations=1)
    record("table4_lu", result.render())
    assert "*" in result.entries.values()
    assert not any(v == "!" for v in result.entries.values())
