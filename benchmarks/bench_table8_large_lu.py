"""Table 8 — solving previously-unsolvable problems (sparse LU).

Paper shape: under the fixed 64 MB/node budget, the new scheme raises
the largest solvable BCSSTK33 truncation (problem size +145%); on the
larger problem MFLOPS grows with p (353 -> 634) while per-node MFLOPS
drops, and #MAPs decreases with p.
"""

import math

from repro.experiments import run_table8


def test_table8(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: run_table8(scale=0.08, block_size=10, procs=(16, 32, 64), base_procs=16),
        rounds=1,
        iterations=1,
    )
    record("table8", result.render())
    # The new scheme solves a strictly larger truncation.
    assert result.n_new > result.n_original
    assert result.size_increase_pct > 0
    ok = [r for r in result.rows if not math.isinf(r.parallel_time)]
    assert len(ok) >= 2
    # Aggregate MFLOPS grows with p; per-node MFLOPS decreases.
    assert ok[-1].mflops > ok[0].mflops
    assert ok[-1].mflops / ok[-1].procs < ok[0].mflops / ok[0].procs
    # PT decreases with p.
    assert ok[-1].parallel_time < ok[0].parallel_time
