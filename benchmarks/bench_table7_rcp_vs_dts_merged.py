"""Table 7 — parallel times: RCP vs DTS with slice merging.

Paper shape ("very encouraging"): with merging, DTS times are close to
RCP's while remaining executable in many more cells — merged slices give
the scheduler critical-path freedom back.
"""

from repro.experiments import table6, table7


def test_table7_cholesky(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table7(ctx, "cholesky"), rounds=1, iterations=1
    )
    record("table7_cholesky", result.render())
    vals = [v for v in result.entries.values() if isinstance(v, float)]
    assert vals
    assert abs(sum(vals) / len(vals)) < 0.2  # close to RCP
    assert "*" in result.entries.values()  # executable where RCP is not


def test_table7_lu(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table7(ctx, "lu"), rounds=1, iterations=1)
    record("table7_lu", result.render())
    assert "*" in result.entries.values()


def test_merging_recovers_time_vs_plain_dts(benchmark, ctx, record):
    """Merged DTS should beat plain DTS at the same capacity."""

    def both():
        plain = table6(ctx, "cholesky", procs=(16,), fractions=(0.75,))
        merged = table7(ctx, "cholesky", procs=(16,), fractions=(0.75,))
        return plain, merged

    plain, merged = benchmark.pedantic(both, rounds=1, iterations=1)
    v_plain = plain.entries[(16, 0.75)]  # DTS vs MPO
    v_merged = merged.entries[(16, 0.75)]  # DTS+merge vs RCP
    if isinstance(v_plain, float) and isinstance(v_merged, float):
        assert v_merged < v_plain + 0.05
