"""Table 3 — overhead of active memory management, sparse LU w/ pivoting.

Paper shape: LU is far less overhead-sensitive than Cholesky (0-2.1% at
100% vs 3.8-22%) because the 1-D mapping creates fewer, coarser objects;
but it has *more* ``inf`` entries because panels are large, leaving less
allocation freedom.
"""

import math

from repro.experiments import table2, table3


def test_table3(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table3(ctx), rounds=1, iterations=1)
    record("table3", result.render())
    procs, fracs = result.procs, result.fractions
    full = [result.pt_increase[(p, 1.0)] for p in procs]
    assert all(0 <= x < 0.25 for x in full)  # much flatter than Cholesky
    # LU shows more non-executable cells at small p than Cholesky did.
    assert math.isinf(result.pt_increase[(procs[0], 0.75)])


def test_lu_less_sensitive_than_cholesky(benchmark, ctx, record):
    """Cross-table comparison the paper calls out in section 5.1."""

    def both():
        return table2(ctx, procs=(16,), fractions=(1.0,)), table3(
            ctx, procs=(16,), fractions=(1.0,)
        )

    chol, lu = benchmark.pedantic(both, rounds=1, iterations=1)
    assert lu.pt_increase[(16, 1.0)] < chol.pt_increase[(16, 1.0)]
