"""Engine benchmark: simulator single-run cost and sweep wall-clock.

Unlike the ``bench_table*`` files, which regenerate the paper's tables,
this benchmark measures the *execution engine itself*: the cost of one
``Simulator.run()`` on the two large workloads, the serial sweep over
the default grid, and the process-parallel sweep executor.  The results
are written to ``BENCH_sweep.json`` at the repository root so the
performance trajectory of the engine can be compared across PRs::

    PYTHONPATH=src python benchmarks/bench_sweep_engine.py
    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_engine.py -q

The JSON schema is ``repro-bench-sweep/9`` (see EXPERIMENTS.md for the
field-by-field description).  Infinities are serialised as the string
``"inf"``, matching the sweep CSV convention.  Version 2 adds the
``instrumentation`` section: the cost of the :mod:`repro.obs` telemetry
layer — a plain run, a run with the disabled ``NULL_INSTRUMENT``
attached (must be free: both take the ``observing = False`` fast path)
and a fully instrumented ``metrics=True`` run.  Version 3 adds the
``conformance`` section: the cost of the :mod:`repro.conformance`
layer — an inactive ``FaultSpec`` attached (must ride the ``fi is
None`` fast path) and a full :class:`InvariantChecker` run.  Version 4
adds the ``analysis`` section: the static analyzer
(:func:`repro.analysis.analyze_schedule` over the compiled schedule's
memoised plan) against a checked simulation of the same cell on the
same plan — the analyzer proves the same properties without an event
loop and is expected to be at least 5x cheaper.  Version 5 adds the
``engines`` section: the array-compiled engine
(``Simulator(engine="compiled")``) against the interpreted oracle on
the same compiled schedules — a gated serial cell (``chol15`` at one
processor, where every task is silent and the compiled engine runs the
schedule as a handful of segment kernels; must be at least
``ENGINE_GATE_MIN_SPEEDUP`` times faster), the protocol-bound grid
cells (recorded, not gated: event count, not dispatch overhead,
dominates them) and a sweep-CSV byte-identity check.  Every engine
measurement also asserts exact result equality — the benchmark doubles
as a differential run.  Version 6 adds the ``runtime`` section: the
fault-tolerant supervised executor (:mod:`repro.experiments.runtime`)
against the plain ``--jobs`` pool on the same fault-free grid —
supervision (deadline tracking, completion polling, retry accounting)
must cost at most ``RUNTIME_GATE_MAX_OVERHEAD`` of the plain parallel
sweep, and the records and CSV bytes must be identical.  Version 7
adds the ``obs`` section: the same supervised sweep with the runtime
trace enabled (``obs_dir=``, one JSONL shard per process, see
``docs/observability.md``) against the untraced supervised run —
tracing rides the same overhead budget, the records and CSV bytes must
be identical, and the merged Perfetto document must be non-trivial.
Version 8 adds the ``opt`` section: the exact branch-and-bound
(:mod:`repro.opt.exact`) on the worked Figure 2 example — both
objectives must stay ``PROVED_OPTIMAL`` at the values the paper's
schedules achieve (PT 16, MIN_MEM 7), and the per-objective solve cost
is recorded (the time objective is gated: the example must stay a
sub-10 ms proof).  Version 9 adds the ``bounds`` section: the
certified static lower bounds (:func:`repro.analysis.certified_bounds`)
against a cold ``analyze_schedule`` of the same cell on the paper
example and ``etree15`` — both cells must reproduce the solver's
proved optima exactly (the gap-0 acceptance check), and on ``etree15``
and in aggregate the bounds must be at least
``BOUNDS_GATE_MIN_RATIO`` times cheaper than the analyzer.

``SEED_BASELINE`` holds reference timings of the pre-optimisation
engine, measured back-to-back with the optimised engine on the same
host, so the recorded speedups compare like with like.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import time
from datetime import datetime, timezone

from repro.experiments import ExperimentContext
from repro.experiments.sweep import SweepRecord, full_sweep, to_csv
from repro.machine.simulator import CompiledSchedule, Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_sweep.json"

#: The default sweep grid (kept explicit so the JSON records it even if
#: :func:`full_sweep` defaults drift later).
WORKLOADS = ("chol15", "lu-goodwin")
PROCS = (2, 4, 8, 16, 32)
HEURISTICS = ("rcp", "mpo", "dts")
FRACTIONS = (1.0, 0.75, 0.5, 0.4, 0.25)
REFERENCE = "rcp"

#: Single-run measurement points: the heaviest processor count, the RCP
#: ordering and half the schedule's TOT (executable on both workloads).
SINGLE_RUN_PROCS = 32
SINGLE_RUN_FRACTION = 0.5
SINGLE_RUN_REPEATS = 5

#: Engine timings at the growth seed (commit adecb8f), measured
#: back-to-back with the optimised engine on the same 2-CPU host
#: (2026-08-05).  ``best_run_s`` is the best of 5 ``run()`` calls of one
#: simulator; ``init_s`` is ``Simulator`` construction including the
#: static preprocessing that :class:`CompiledSchedule` now factors out.
SEED_BASELINE = {
    "commit": "adecb8f",
    "note": (
        "pre-optimisation engine, measured back-to-back with the "
        "current engine on the same host"
    ),
    "serial_sweep_s": 38.59,
    "single_run": {
        "chol15": {"init_s": 0.1184, "cold_run_s": 0.3438, "best_run_s": 0.3173},
        "lu-goodwin": {"init_s": 0.0166, "cold_run_s": 0.0341, "best_run_s": 0.0249},
    },
}


def _jsonable(x: float) -> float | str:
    return "inf" if isinstance(x, float) and math.isinf(x) else x


def bench_single_runs() -> dict:
    """Time ``CompiledSchedule`` construction and repeated ``run()``
    calls on the two large workloads (scheduling cost excluded)."""
    ctx = ExperimentContext()
    out: dict = {}
    for key in WORKLOADS:
        sched = ctx.schedule(key, SINGLE_RUN_PROCS, "rcp")
        prof = ctx.profile(key, SINGLE_RUN_PROCS, "rcp")
        capacity = int(math.floor(prof.tot * SINGLE_RUN_FRACTION))
        if prof.min_mem > capacity:  # pragma: no cover - grid guard
            capacity = prof.tot
        t0 = time.perf_counter()
        cs = CompiledSchedule(sched, profile=prof)
        compile_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim = Simulator(spec=ctx.spec, capacity=capacity, compiled=cs)
        init_s = time.perf_counter() - t0
        runs = []
        res = None
        for _ in range(SINGLE_RUN_REPEATS):
            t0 = time.perf_counter()
            res = sim.run()
            runs.append(time.perf_counter() - t0)
        out[key] = {
            "procs": SINGLE_RUN_PROCS,
            "heuristic": "rcp",
            "fraction": SINGLE_RUN_FRACTION,
            "capacity": capacity,
            "compile_s": round(compile_s, 4),
            "init_s": round(init_s, 4),
            "cold_run_s": round(runs[0], 4),
            "best_run_s": round(min(runs), 4),
            "parallel_time": res.parallel_time,
            "avg_maps": round(res.avg_maps, 3),
        }
    return out


#: Repeats for the instrumentation micro-benchmark (best-of is
#: reported, so more repeats only tighten the numbers).
INSTRUMENTATION_REPEATS = 7


def bench_instrumentation() -> dict:
    """Cost of the telemetry layer on one large-workload run.

    Three configurations of the *same* compiled schedule: plain
    (``metrics=False``, nothing attached), ``NULL_INSTRUMENT`` attached
    (disabled — must ride the same ``observing = False`` fast path) and
    ``metrics=True`` (the full :class:`~repro.obs.instruments.MetricsSuite`
    plus document building).  Best-of-``INSTRUMENTATION_REPEATS``
    timings; the ratios are the headline numbers.
    """
    from repro.obs import NULL_INSTRUMENT

    ctx = ExperimentContext()
    key = "lu-goodwin"
    prof = ctx.profile(key, SINGLE_RUN_PROCS, "rcp")
    capacity = int(math.floor(prof.tot * SINGLE_RUN_FRACTION))
    cs = CompiledSchedule(ctx.schedule(key, SINGLE_RUN_PROCS, "rcp"), profile=prof)

    sims = {
        "plain": Simulator(spec=ctx.spec, capacity=capacity, compiled=cs),
        "null": Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs,
            instrument=NULL_INSTRUMENT,
        ),
        "metrics": Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs, metrics=True
        ),
    }
    # Interleave the configurations round-robin so ambient load hits
    # all three equally; best-of then discards the noisy repeats.
    best = dict.fromkeys(sims, float("inf"))
    for _ in range(INSTRUMENTATION_REPEATS):
        for name, sim in sims.items():
            t0 = time.perf_counter()
            sim.run()
            dt = time.perf_counter() - t0
            if dt < best[name]:
                best[name] = dt
    plain_s, null_s, metrics_s = best["plain"], best["null"], best["metrics"]
    return {
        "workload": key,
        "procs": SINGLE_RUN_PROCS,
        "fraction": SINGLE_RUN_FRACTION,
        "repeats": INSTRUMENTATION_REPEATS,
        "plain_s": round(plain_s, 4),
        "null_instrument_s": round(null_s, 4),
        "metrics_s": round(metrics_s, 4),
        "null_vs_plain": round(null_s / plain_s, 3),
        "metrics_vs_plain": round(metrics_s / plain_s, 3),
    }


def bench_conformance() -> dict:
    """Cost of the conformance layer on one large-workload run.

    Three configurations of the *same* compiled schedule: plain
    (no faults, no checker), an inactive :class:`FaultSpec` attached
    (disabled — must ride the ``fi is None`` fast path; the acceptance
    budget is ~5%) and an :class:`InvariantChecker` attached (the full
    online invariant suite).  Best-of-``INSTRUMENTATION_REPEATS``
    interleaved timings, like :func:`bench_instrumentation`.
    """
    from repro.conformance import FaultSpec, InvariantChecker

    ctx = ExperimentContext()
    key = "lu-goodwin"
    prof = ctx.profile(key, SINGLE_RUN_PROCS, "rcp")
    capacity = int(math.floor(prof.tot * SINGLE_RUN_FRACTION))
    cs = CompiledSchedule(ctx.schedule(key, SINGLE_RUN_PROCS, "rcp"), profile=prof)

    checker = InvariantChecker(cs)
    sims = {
        "plain": Simulator(spec=ctx.spec, capacity=capacity, compiled=cs),
        "null_faults": Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs, faults=FaultSpec()
        ),
        "checked": Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs, instrument=checker
        ),
    }
    best = dict.fromkeys(sims, float("inf"))
    for _ in range(INSTRUMENTATION_REPEATS):
        for name, sim in sims.items():
            t0 = time.perf_counter()
            sim.run()
            dt = time.perf_counter() - t0
            if dt < best[name]:
                best[name] = dt
    assert checker.ok  # the benchmark doubles as a conformance run
    plain_s, null_s, checked_s = (
        best["plain"], best["null_faults"], best["checked"]
    )
    return {
        "workload": key,
        "procs": SINGLE_RUN_PROCS,
        "fraction": SINGLE_RUN_FRACTION,
        "repeats": INSTRUMENTATION_REPEATS,
        "plain_s": round(plain_s, 4),
        "null_faults_s": round(null_s, 4),
        "checked_s": round(checked_s, 4),
        "null_faults_vs_plain": round(null_s / plain_s, 3),
        "checked_vs_plain": round(checked_s / plain_s, 3),
    }


def bench_analysis() -> dict:
    """Static analyzer vs checked simulation on the same cell.

    Both judge the same (schedule, capacity) configuration —
    :func:`repro.analysis.analyze_schedule` by proving the Defs 1-6 /
    Theorem 1 properties from the plan IR, the
    :class:`InvariantChecker` by observing a full simulated execution.
    Both sides read the compiled schedule's memoised
    :meth:`CompiledSchedule.plan_for` plan (exactly what the simulator
    executes), so the ratio compares the passes against the event loop,
    not plan construction.  Best-of-``INSTRUMENTATION_REPEATS``
    timings; the headline ratio is how much cheaper the static verdict
    is.
    """
    from repro.analysis import analyze_schedule
    from repro.conformance import InvariantChecker

    ctx = ExperimentContext()
    key = "lu-goodwin"
    sched = ctx.schedule(key, SINGLE_RUN_PROCS, "rcp")
    prof = ctx.profile(key, SINGLE_RUN_PROCS, "rcp")
    capacity = int(math.floor(prof.tot * SINGLE_RUN_FRACTION))
    cs = CompiledSchedule(sched, profile=prof)
    plan = cs.plan_for(capacity)  # memoised: shared by both sides

    # Each side pays its full per-cell cost (the compiled schedule and
    # its plan are shared across a sweep; checker and simulator are
    # not): the static side runs the three passes over the plan IR, the
    # dynamic side builds the checker and simulator and runs the event
    # loop on the same plan.
    best = {"analyze": float("inf"), "checked": float("inf")}
    report = checker = None
    for _ in range(INSTRUMENTATION_REPEATS):
        t0 = time.perf_counter()
        report = analyze_schedule(
            sched, capacity=capacity, profile=prof, plan=plan
        )
        best["analyze"] = min(best["analyze"], time.perf_counter() - t0)
        t0 = time.perf_counter()
        checker = InvariantChecker(cs)
        Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs,
            instrument=checker,
        ).run()
        best["checked"] = min(best["checked"], time.perf_counter() - t0)
    assert report.ok and checker.ok  # both verdicts clean, and agreeing
    return {
        "workload": key,
        "procs": SINGLE_RUN_PROCS,
        "fraction": SINGLE_RUN_FRACTION,
        "repeats": INSTRUMENTATION_REPEATS,
        "analyze_s": round(best["analyze"], 4),
        "checked_run_s": round(best["checked"], 4),
        "checked_vs_analyze": round(best["checked"] / best["analyze"], 2),
    }


#: Certified-bound settings.  The bounds are microsecond-scale, so the
#: repeat count is high.  The per-graph index memo is cleared once per
#: cell (the first repetition pays the cold build) and the best-of
#: timing is the amortised cost — exactly the marginal price a sweep
#: cell or scorecard row pays, since every cell of one workload shares
#: the frozen graph's index.
BOUNDS_REPEATS = 50
BOUNDS_GATE_MIN_RATIO = 10.0


def bench_bounds() -> dict:
    """Certified static bounds vs a cold ``analyze_schedule`` cell.

    Two cells bracket the range: the 20-task worked example (Figure 2,
    ``schedule_c``) and the real ``etree15`` elimination forest (rcp,
    two processors).  On both, :func:`repro.analysis.certified_bounds`
    must reproduce the branch-and-bound solver's proved optima exactly
    (gap 0: PT 16 / MIN_MEM 7 on the paper, MIN_MEM 8224 on etree15) —
    the benchmark doubles as the acceptance check.  The headline ratio
    is gated on ``etree15`` and in aggregate: the closed-form bounds
    must stay at least ``BOUNDS_GATE_MIN_RATIO`` times cheaper than the
    full static analyzer on the same cell.  The tiny paper cell is
    recorded but not gated — the analyzer itself costs only ~165 µs
    there, so the ratio plateaus; the advantage grows with graph size.
    """
    import repro.analysis.bounds as bounds_mod
    from repro.analysis import analyze_schedule, certified_bounds
    from repro.core.schedule import UNIT_COMM
    from repro.graph.paper_example import schedule_c

    ctx = ExperimentContext()
    comm = ctx.spec.comm_model()
    cells = {
        "paper": (schedule_c(), UNIT_COMM, {"pt": 16.0, "min_mem": 7.0}),
        "etree15": (
            ctx.schedule("etree15", 2, "rcp"), comm, {"min_mem": 8224.0}
        ),
    }
    out: dict = {}
    totals = {"bounds": 0.0, "analyze": 0.0}
    for name, (sched, cell_comm, optima) in cells.items():
        best = {"bounds": float("inf"), "analyze": float("inf")}
        bs = None
        bounds_mod._INDEX_CACHE.clear()  # first rep pays the cold build
        for _ in range(BOUNDS_REPEATS):
            t0 = time.perf_counter()
            bs = certified_bounds(
                sched.graph, sched.placement, sched.assignment, cell_comm
            )
            best["bounds"] = min(best["bounds"], time.perf_counter() - t0)
        for _ in range(INSTRUMENTATION_REPEATS):
            t0 = time.perf_counter()
            report = analyze_schedule(sched, fraction=1.0)
            best["analyze"] = min(best["analyze"], time.perf_counter() - t0)
        assert report.ok
        for metric, expect in optima.items():
            got = (bs.pt if metric == "pt" else bs.min_mem).value
            assert abs(got - expect) <= 1e-9, (name, metric, got)
        totals["bounds"] += best["bounds"]
        totals["analyze"] += best["analyze"]
        out[name] = {
            "bounds_s": round(best["bounds"], 6),
            "analyze_s": round(best["analyze"], 6),
            "analyze_vs_bounds": round(best["analyze"] / best["bounds"], 2),
            "proved_optima": optima,
        }
    out["bounds_paper_s"] = out["paper"]["bounds_s"]
    out["etree_vs_analyze"] = out["etree15"]["analyze_vs_bounds"]
    out["aggregate_vs_analyze"] = round(
        totals["analyze"] / totals["bounds"], 2
    )
    out["gate_min_ratio"] = BOUNDS_GATE_MIN_RATIO
    out["repeats"] = {"bounds": BOUNDS_REPEATS,
                      "analyze": INSTRUMENTATION_REPEATS}
    return out


#: Engine-comparison settings.  The gate cell is the serial (one
#: processor) ``chol15`` schedule at 100% memory: with no cross-
#: processor edges every task is silent, so the run isolates the
#: per-event dispatch overhead the compiled engine eliminates.  The
#: multi-processor grid cells are event-bound (the engines agree on the
#: event count, which a Python heap serves at a bounded rate), so their
#: honest ~2x is recorded but not gated.
ENGINE_REPEATS = 5
ENGINE_GATE_MIN_SPEEDUP = 10.0
ENGINE_GATE_CELL = ("chol15", 1, "rcp", 1.0)


def _results_equal(ra, rb) -> bool:
    """Exact (``==``, never allclose) equality of two fault-free runs."""
    import dataclasses

    from repro.machine.simulator import ProcessorStats

    if ra.parallel_time != rb.parallel_time:
        return False
    if ra.task_finish_time != rb.task_finish_time:
        return False
    fields = [f.name for f in dataclasses.fields(ProcessorStats)]
    return all(
        getattr(sa, f) == getattr(sb, f)
        for sa, sb in zip(ra.stats, rb.stats)
        for f in fields
    )


def _time_engine_pair(ctx: ExperimentContext, key: str, p: int,
                      heuristic: str, fraction: float) -> dict:
    """Best-of-``ENGINE_REPEATS`` interleaved timings of one cell under
    both engines, asserting exact result equality."""
    prof = ctx.profile(key, p, heuristic)
    capacity = int(math.floor(prof.tot * fraction))
    if prof.min_mem > capacity:  # pragma: no cover - grid guard
        capacity = prof.tot
    cs = ctx.compiled(key, p, heuristic)
    sims = {
        engine: Simulator(
            spec=ctx.spec, capacity=capacity, compiled=cs, engine=engine
        )
        for engine in ("interpreted", "compiled")
    }
    best = dict.fromkeys(sims, float("inf"))
    results = {}
    for _ in range(ENGINE_REPEATS):
        for engine, sim in sims.items():
            t0 = time.perf_counter()
            results[engine] = sim.run()
            dt = time.perf_counter() - t0
            if dt < best[engine]:
                best[engine] = dt
    assert results["compiled"].engine == "compiled"  # no silent fallback
    exact = _results_equal(results["interpreted"], results["compiled"])
    return {
        "workload": key,
        "procs": p,
        "heuristic": heuristic,
        "fraction": fraction,
        "capacity": capacity,
        "repeats": ENGINE_REPEATS,
        "interpreted_s": round(best["interpreted"], 5),
        "compiled_s": round(best["compiled"], 5),
        "speedup": round(best["interpreted"] / best["compiled"], 2),
        "exact": exact,
    }


def bench_engines() -> dict:
    """Compiled engine vs the interpreted oracle.

    Measures the gated serial cell and the (ungated) protocol-bound
    grid cells, then runs one small sweep group under each engine and
    compares the CSV bytes.  Exactness is asserted everywhere — a
    drifting engine fails the benchmark before it fails the gate.
    """
    ctx = ExperimentContext()
    gate = _time_engine_pair(ctx, *ENGINE_GATE_CELL)
    grid = {
        key: _time_engine_pair(
            ctx, key, SINGLE_RUN_PROCS, "rcp", SINGLE_RUN_FRACTION
        )
        for key in WORKLOADS
    }
    csv_by_engine = {}
    for engine in ("interpreted", "compiled"):
        records = full_sweep(
            ExperimentContext(),
            workloads=("lu-goodwin",),
            procs=(2, 4),
            heuristics=HEURISTICS,
            fractions=FRACTIONS,
            reference=REFERENCE,
            engine=engine,
        )
        csv_by_engine[engine] = to_csv(records)
    return {
        "gate_min_speedup": ENGINE_GATE_MIN_SPEEDUP,
        "gate": gate,
        "grid": grid,
        "sweep_csv_identical": (
            csv_by_engine["interpreted"] == csv_by_engine["compiled"]
        ),
    }


#: Supervised-executor overhead settings.  The grid is a three-group
#: slice of the default grid (big enough that per-group supervision
#: cost would show, small enough to keep the benchmark fast); the gate
#: is the acceptance budget for supervision of a fault-free sweep.
RUNTIME_REPEATS = 5
RUNTIME_GATE_MAX_OVERHEAD = 1.05
RUNTIME_GRID = dict(
    workloads=("lu-goodwin",),
    procs=(2, 4, 8),
    heuristics=("rcp", "mpo"),
    fractions=(1.0, 0.5),
    reference=REFERENCE,
)


def bench_runtime() -> dict:
    """Supervised fault-free sweep vs the plain parallel executor.

    Both run the same grid with the same worker count; the supervised
    side adds deadline tracking, completion polling and retry
    accounting (:func:`repro.experiments.runtime.run_supervised`) but
    injects no faults, so any wall-clock difference is pure supervision
    overhead.  Interleaved best-of-``RUNTIME_REPEATS`` timings of whole
    sweeps (pool startup included on both sides); the records and CSV
    bytes must be identical, and the overhead ratio is gated at
    ``RUNTIME_GATE_MAX_OVERHEAD``.
    """
    from repro.experiments.runtime import RuntimePolicy

    jobs = max(2, os.cpu_count() or 2)
    best = {"plain": float("inf"), "supervised": float("inf")}
    outputs: dict[str, list[SweepRecord]] = {}
    for _ in range(RUNTIME_REPEATS):
        for name in ("plain", "supervised"):
            kwargs = dict(RUNTIME_GRID, jobs=jobs)
            if name == "supervised":
                kwargs["runtime"] = RuntimePolicy()
            t0 = time.perf_counter()
            outputs[name] = full_sweep(ExperimentContext(), **kwargs)
            best[name] = min(best[name], time.perf_counter() - t0)
    identical = outputs["supervised"] == outputs["plain"] and to_csv(
        outputs["supervised"]
    ) == to_csv(outputs["plain"])
    return {
        "grid": {k: list(v) if isinstance(v, tuple) else v
                 for k, v in RUNTIME_GRID.items()},
        "jobs": jobs,
        "repeats": RUNTIME_REPEATS,
        "gate_max_overhead": RUNTIME_GATE_MAX_OVERHEAD,
        "plain_s": round(best["plain"], 3),
        "supervised_s": round(best["supervised"], 3),
        "supervised_vs_plain": round(best["supervised"] / best["plain"], 3),
        "identical_to_plain": identical,
    }


#: Tracing-overhead repeats.  The runtime-trace comparison reuses
#: ``RUNTIME_GRID``; three interleaved repeats keep the added benchmark
#: time small while best-of still discards pool-startup noise.
OBS_REPEATS = 3
OBS_GATE_MAX_OVERHEAD = RUNTIME_GATE_MAX_OVERHEAD


def bench_obs() -> dict:
    """Runtime tracing cost on a supervised fault-free sweep.

    Both sides run ``RUNTIME_GRID`` under the supervised executor with
    the same worker count; the traced side adds ``obs_dir=`` (one
    append-only JSONL shard per process, flushed per event).  Tracing
    must ride the same acceptance budget as supervision itself
    (``OBS_GATE_MAX_OVERHEAD``), the records and CSV bytes must be
    identical to the untraced run, and the merged Perfetto document
    built from the last traced repeat must contain events — an empty
    trace would mean the emit sites silently rotted.
    """
    import tempfile

    from repro.experiments.runtime import RuntimePolicy
    from repro.obs import load_runtime_shards, merge_obs_dir

    jobs = max(2, os.cpu_count() or 2)
    best = {"plain": float("inf"), "traced": float("inf")}
    outputs: dict[str, list[SweepRecord]] = {}
    merged_events = trace_shards = 0
    for _ in range(OBS_REPEATS):
        kwargs = dict(RUNTIME_GRID, jobs=jobs, runtime=RuntimePolicy())
        t0 = time.perf_counter()
        outputs["plain"] = full_sweep(ExperimentContext(), **kwargs)
        best["plain"] = min(best["plain"], time.perf_counter() - t0)
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            outputs["traced"] = full_sweep(
                ExperimentContext(), obs_dir=tmp, **kwargs
            )
            best["traced"] = min(best["traced"], time.perf_counter() - t0)
            trace_shards = len(load_runtime_shards(tmp))
            merged_events = len(merge_obs_dir(tmp)["traceEvents"])
    identical = outputs["traced"] == outputs["plain"] and to_csv(
        outputs["traced"]
    ) == to_csv(outputs["plain"])
    return {
        "grid": {k: list(v) if isinstance(v, tuple) else v
                 for k, v in RUNTIME_GRID.items()},
        "jobs": jobs,
        "repeats": OBS_REPEATS,
        "gate_max_overhead": OBS_GATE_MAX_OVERHEAD,
        "plain_s": round(best["plain"], 3),
        "traced_s": round(best["traced"], 3),
        "traced_vs_plain": round(best["traced"] / best["plain"], 3),
        "identical_to_plain": identical,
        "trace_shards": trace_shards,
        "merged_events": merged_events,
    }


def bench_sweep() -> dict:
    """Serial sweep with per-cell timings, then the parallel executor;
    asserts the two produce identical records and CSV bytes."""
    ctx = ExperimentContext()
    cells = []
    records: list[SweepRecord] = []
    t_serial = time.perf_counter()
    for key in WORKLOADS:
        for p in PROCS:
            for h in HEURISTICS:
                for f in FRACTIONS:
                    t0 = time.perf_counter()
                    cell = ctx.run_cell(key, p, h, f, reference=REFERENCE)
                    cell_s = time.perf_counter() - t0
                    records.append(
                        SweepRecord(
                            workload=key,
                            procs=p,
                            heuristic=h,
                            fraction=f,
                            executable=cell.executable,
                            capacity=cell.capacity,
                            min_mem=cell.min_mem,
                            tot=cell.tot,
                            parallel_time=cell.pt,
                            pt_increase=cell.pt_increase,
                            avg_maps=cell.avg_maps,
                        )
                    )
                    cells.append(
                        {
                            "workload": key,
                            "procs": p,
                            "heuristic": h,
                            "fraction": f,
                            "executable": cell.executable,
                            "parallel_time": _jsonable(cell.pt),
                            "avg_maps": _jsonable(
                                round(cell.avg_maps, 3)
                                if math.isfinite(cell.avg_maps)
                                else cell.avg_maps
                            ),
                            "cell_s": round(cell_s, 4),
                        }
                    )
    serial_s = time.perf_counter() - t_serial

    jobs = max(2, os.cpu_count() or 2)
    t_par = time.perf_counter()
    par_records = full_sweep(
        ExperimentContext(),
        workloads=WORKLOADS,
        procs=PROCS,
        heuristics=HEURISTICS,
        fractions=FRACTIONS,
        reference=REFERENCE,
        jobs=jobs,
    )
    parallel_s = time.perf_counter() - t_par

    identical = par_records == records and to_csv(par_records) == to_csv(records)
    return {
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "jobs": jobs,
        "speedup": round(serial_s / parallel_s, 2),
        "identical_to_serial": identical,
        "cells": cells,
    }


#: Repeats for the exact-solver micro-benchmark.
OPT_REPEATS = 5


def bench_opt() -> dict:
    """Cost of the exact branch-and-bound on the worked example.

    Both objectives must prove (status ``PROVED_OPTIMAL``) at the
    values the paper's own schedules achieve — PT 16 and MIN_MEM 7 —
    and the best-of-``OPT_REPEATS`` solve times are recorded.
    ``exact_paper_s`` (the time objective, the slower of the two) is
    the gated headline number.
    """
    from repro.graph.paper_example import (
        paper_assignment,
        paper_example_graph,
        paper_placement,
    )
    from repro.opt.exact import solve

    g = paper_example_graph()
    pl = paper_placement()
    asg = paper_assignment(g, pl)
    out: dict = {}
    for objective, expect in (("time", 16.0), ("memory", 7.0)):
        runs = []
        res = None
        for _ in range(OPT_REPEATS):
            t0 = time.perf_counter()
            res = solve(g, pl, asg, objective=objective)
            runs.append(time.perf_counter() - t0)
        assert res.status == "PROVED_OPTIMAL", res.status
        assert abs(res.value - expect) <= 1e-9, (objective, res.value)
        out[objective] = {
            "status": res.status,
            "value": res.value,
            "nodes": res.nodes,
            "best_solve_s": round(min(runs), 5),
        }
    out["exact_paper_s"] = out["time"]["best_solve_s"]
    return out


def run_benchmark(out_path: pathlib.Path = OUT_PATH) -> dict:
    single = bench_single_runs()
    instrumentation = bench_instrumentation()
    conformance = bench_conformance()
    analysis = bench_analysis()
    bounds = bench_bounds()
    engines = bench_engines()
    runtime = bench_runtime()
    obs = bench_obs()
    opt = bench_opt()
    sweep = bench_sweep()
    seed = SEED_BASELINE
    comparison = {
        "serial_sweep_vs_seed": round(seed["serial_sweep_s"] / sweep["serial_s"], 2),
        "parallel_sweep_vs_seed": round(
            seed["serial_sweep_s"] / sweep["parallel_s"], 2
        ),
    }
    for key in WORKLOADS:
        comparison[f"{key}_run_vs_seed"] = round(
            seed["single_run"][key]["best_run_s"] / single[key]["best_run_s"], 2
        )
    report = {
        "schema": "repro-bench-sweep/9",
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "grid": {
            "workloads": list(WORKLOADS),
            "procs": list(PROCS),
            "heuristics": list(HEURISTICS),
            "fractions": list(FRACTIONS),
            "reference": REFERENCE,
        },
        "single_run": single,
        "instrumentation": instrumentation,
        "conformance": conformance,
        "analysis": analysis,
        "bounds": bounds,
        "engines": engines,
        "runtime": runtime,
        "obs": obs,
        "opt": opt,
        "sweep": sweep,
        "seed_baseline": seed,
        "speedup_vs_seed": comparison,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_sweep_engine_benchmark():
    report = run_benchmark()
    assert report["sweep"]["identical_to_serial"]
    # On a 2-CPU host one worker already saturates the machine and the
    # pool's spawn overhead dominates, so only demand a real speedup
    # when there is parallelism to exploit.
    if (os.cpu_count() or 1) >= 4:
        assert report["sweep"]["speedup"] > 1.0
    # The disabled-instrument path must be effectively free.  The hard
    # budget is ~2%; the assertion bound is deliberately loose so a
    # noisy CI host does not flake — the recorded ratio is the number
    # that matters across PRs.
    assert report["instrumentation"]["null_vs_plain"] < 1.25
    # Full metrics collection should stay within a small constant
    # factor of the plain run.
    assert report["instrumentation"]["metrics_vs_plain"] < 5.0
    # Disabled conformance path (inactive FaultSpec) rides the
    # ``fi is None`` fast path: the ~1.05x acceptance budget, with the
    # same loosened assertion bound against CI noise.
    assert report["conformance"]["null_faults_vs_plain"] < 1.25
    # The online invariant checker observes every event; a small
    # constant factor over the plain run is expected.
    assert report["conformance"]["checked_vs_plain"] < 5.0
    # The static analyzer proves the same properties without an event
    # loop; it must be much cheaper than a checked simulation.
    assert report["analysis"]["checked_vs_analyze"] >= 5.0
    # The certified bounds match the solver's proved optima (asserted
    # inside bench_bounds) and must stay an order of magnitude cheaper
    # than the analyzer on the real workload and in aggregate.
    bnd = report["bounds"]
    assert bnd["etree_vs_analyze"] >= BOUNDS_GATE_MIN_RATIO
    assert bnd["aggregate_vs_analyze"] >= BOUNDS_GATE_MIN_RATIO
    # The compiled engine must agree exactly with the interpreted
    # oracle everywhere it was measured, its sweep CSV must be
    # byte-identical, and on the silent-dominated gate cell it must
    # clear the dispatch-overhead speedup gate.
    eng = report["engines"]
    assert eng["gate"]["exact"]
    assert all(cell["exact"] for cell in eng["grid"].values())
    assert eng["sweep_csv_identical"]
    assert eng["gate"]["speedup"] >= ENGINE_GATE_MIN_SPEEDUP
    # The supervised executor on a fault-free sweep must be free of
    # observable cost (the ~1.05x acceptance budget) and bit-identical
    # to the plain pool.  The assertion bound is loosened against CI
    # noise, matching the instrumentation/conformance gates above; the
    # recorded ratio is the number tracked across PRs.
    rt = report["runtime"]
    assert rt["identical_to_plain"]
    assert rt["supervised_vs_plain"] < 1.25
    # Runtime tracing on the same supervised sweep: the CSV must stay
    # byte-identical (observability never shapes records), the merged
    # Perfetto document must actually contain events, and the traced
    # run rides the same loosened overhead bound.
    ob = report["obs"]
    assert ob["identical_to_plain"]
    assert ob["merged_events"] > 0
    assert ob["trace_shards"] >= 2  # supervisor + at least one worker
    assert ob["traced_vs_plain"] < 1.25
    assert OUT_PATH.exists()


if __name__ == "__main__":
    report = run_benchmark()
    sw = report["sweep"]
    inst = report["instrumentation"]
    print(f"serial sweep   : {sw['serial_s']:.2f}s")
    print(f"parallel sweep : {sw['parallel_s']:.2f}s (jobs={sw['jobs']})")
    print(f"speedup        : {sw['speedup']:.2f}x"
          f"  (identical: {sw['identical_to_serial']})")
    print(f"instrumentation: plain {inst['plain_s']*1e3:.1f}ms | "
          f"null x{inst['null_vs_plain']:.3f} | "
          f"metrics x{inst['metrics_vs_plain']:.3f}")
    conf = report["conformance"]
    print(f"conformance    : plain {conf['plain_s']*1e3:.1f}ms | "
          f"null-faults x{conf['null_faults_vs_plain']:.3f} | "
          f"checked x{conf['checked_vs_plain']:.3f}")
    ana = report["analysis"]
    print(f"analysis       : analyze {ana['analyze_s']*1e3:.1f}ms | "
          f"checked run {ana['checked_run_s']*1e3:.1f}ms | "
          f"checked/analyze x{ana['checked_vs_analyze']:.1f}")
    bnd = report["bounds"]
    print(f"bounds         : paper {bnd['paper']['bounds_s']*1e6:.0f}us "
          f"x{bnd['paper']['analyze_vs_bounds']:.1f} | "
          f"etree15 {bnd['etree15']['bounds_s']*1e6:.0f}us "
          f"x{bnd['etree_vs_analyze']:.1f} | "
          f"aggregate x{bnd['aggregate_vs_analyze']:.1f} "
          f"(gate >= {bnd['gate_min_ratio']:.0f}x)")
    eng = report["engines"]
    g = eng["gate"]
    print(f"engine gate    : {g['workload']} p={g['procs']} "
          f"interp {g['interpreted_s']*1e3:.1f}ms | "
          f"compiled {g['compiled_s']*1e3:.2f}ms | "
          f"x{g['speedup']:.1f} (gate >= {eng['gate_min_speedup']:.0f}x, "
          f"exact: {g['exact']})")
    for key, cell in eng["grid"].items():
        print(f"engine grid    : {key} p={cell['procs']} "
              f"x{cell['speedup']:.2f} (exact: {cell['exact']})")
    print(f"engine sweep   : csv identical: {eng['sweep_csv_identical']}")
    rt = report["runtime"]
    print(f"runtime        : plain {rt['plain_s']:.2f}s | "
          f"supervised {rt['supervised_s']:.2f}s | "
          f"x{rt['supervised_vs_plain']:.3f} "
          f"(gate <= {rt['gate_max_overhead']:.2f}x, "
          f"identical: {rt['identical_to_plain']})")
    ob = report["obs"]
    print(f"obs tracing    : plain {ob['plain_s']:.2f}s | "
          f"traced {ob['traced_s']:.2f}s | "
          f"x{ob['traced_vs_plain']:.3f} "
          f"({ob['trace_shards']} shards, {ob['merged_events']} events, "
          f"identical: {ob['identical_to_plain']})")
    for k, v in report["speedup_vs_seed"].items():
        print(f"{k:24s}: {v:.2f}x")
    print(f"wrote {OUT_PATH}")
