"""Ablation — static scheduling vs an idealised dynamic baseline.

The paper's related-work argument (section 1): dynamic schedulers (Cilk,
Blelloch et al.) optimise time greedily; their per-processor space is
``O(S1)`` / needs a shared pool.  This ablation runs an ETF greedy
scheduler (zero control overhead — an *upper bound* on dynamic-runtime
time efficiency) and compares time and memory against the static
heuristics on the Cholesky workload.
"""

from repro.core import analyze_memory, gantt, owner_compute_assignment
from repro.core.dynamic import etf_schedule
from repro.core.mpo import mpo_order
from repro.experiments.report import render_table


def test_dynamic_vs_static(benchmark, ctx, record):
    key, p = "chol15", 8
    prob = ctx.problem(key)
    g = prob.graph
    comm = ctx.spec.comm_model()

    def run():
        dyn = etf_schedule(g, p, comm)
        pl = dyn.placement
        mpo = mpo_order(g, pl, owner_compute_assignment(g, pl), comm)
        return dyn, mpo

    dyn, mpo = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, sched in (("ETF (dynamic)", dyn), ("MPO (static)", mpo)):
        prof = analyze_memory(sched)
        rows.append(
            [
                name,
                f"{gantt(sched, comm).makespan*1e3:.2f} ms",
                f"{prof.min_mem}",
                f"{prof.memory_scalability():.2f}",
            ]
        )
    record(
        "ablation_dynamic",
        render_table(
            ["scheduler", "predicted PT", "MIN_MEM (B)", "S1/S_p"],
            rows,
            title=f"Ablation: idealised dynamic (ETF) vs static MPO (Cholesky, P={p})",
        ),
    )
    m_dyn = analyze_memory(dyn).min_mem
    m_mpo = analyze_memory(mpo).min_mem
    # The memory-oblivious dynamic baseline needs at least as much space.
    assert m_dyn >= m_mpo
