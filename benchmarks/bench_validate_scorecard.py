"""The replication scorecard as a benchmark artifact.

Runs every machine-checkable claim (worked-example exact values + the
directional trends of each table/figure) and records the PASS/FAIL
checklist alongside the regenerated tables.
"""

from repro.experiments.validate import render_scorecard, validate


def test_scorecard(benchmark, ctx, record):
    claims = benchmark.pedantic(lambda: validate(ctx), rounds=1, iterations=1)
    record("scorecard", render_scorecard(claims))
    failed = [c for c in claims if not c.passed]
    assert not failed, render_scorecard(failed)
