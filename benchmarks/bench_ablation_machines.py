"""Ablation — machine balance: Cray-T3D vs Meiko CS-2.

The paper implemented RAPID "on Cray-T3D and Meiko CS-2" and reports
T3D numbers.  The CS-2's communication is slower relative to compute
(higher latency, lower bandwidth), so the same schedule is more
latency-bound and the memory-management handshake costs relatively more.
This ablation runs the identical Cholesky schedule on both machine
models.
"""

from repro.experiments.report import render_table
from repro.machine.simulator import Simulator
from repro.machine.spec import CRAY_T3D, MEIKO_CS2


def test_cross_machine(benchmark, ctx, record):
    key, p, frac = "chol15", 16, 0.75
    sched = ctx.schedule(key, p, "rcp")
    prof = ctx.profile(key, p, "rcp")
    capacity = int(prof.tot * frac)

    def sweep():
        rows = []
        for name, spec in (("Cray-T3D", CRAY_T3D), ("Meiko CS-2", MEIKO_CS2)):
            base = Simulator(
                sched, spec=spec, memory_managed=False, profile=prof
            ).run()
            managed = Simulator(
                sched, spec=spec, capacity=capacity, profile=prof
            ).run()
            inc = (managed.parallel_time - base.parallel_time) / base.parallel_time
            rows.append((name, base.parallel_time, managed.parallel_time, inc))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_machines",
        render_table(
            ["machine", "baseline PT", "managed PT (75%)", "PT increase"],
            [[n, f"{b*1e3:.2f} ms", f"{m*1e3:.2f} ms", f"{100*i:.1f}%"]
             for n, b, m, i in rows],
            title=f"Ablation: machine balance (Cholesky, RCP, P={p})",
        ),
    )
    t3d, cs2 = rows
    # the CS-2 is slower in absolute terms
    assert cs2[1] > t3d[1]
    # both run to completion with positive overhead
    assert t3d[3] >= 0 and cs2[3] >= 0
