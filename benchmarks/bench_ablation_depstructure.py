"""Ablation — dependence-structure memory (the paper's conclusion).

"For the examples we have tested, dependence structures can take from
18% to 50% of the total memory space. Although a complete dependence
structure is needed for scheduling at the inspector stage, it is
possible to distribute the dependence structure during the executor
stage."

This ablation measures, under a record-size model of the runtime
bookkeeping, the dependence share of per-processor memory for a
replicated (inspector) vs distributed (executor) layout across task
granularities.  At our scaled-down matrix sizes the graph records weigh
more than in the paper (less data per task); the table shows the share
falling toward the paper's band as blocks coarsen, and distribution
recovering 70-90% of the structure memory — the conclusion's proposal,
quantified.
"""

from repro.core import analyze_memory, rcp_order
from repro.core.depmem import dependence_memory_report
from repro.experiments.report import render_table
from repro.sparse.cholesky import build_cholesky
from repro.sparse.matrices import bcsstk15_like


def test_dependence_structure_share(benchmark, ctx, record):
    a = bcsstk15_like(scale=0.15)
    p = 8

    def sweep():
        rows = []
        for w in (8, 12, 24, 32):
            prob = build_cholesky(a, block_size=w, with_kernels=False)
            pl = prob.placement(p)
            asg = prob.assignment(pl)
            s = rcp_order(prob.graph, pl, asg)
            prof = analyze_memory(s)
            rep = dependence_memory_report(s, prof.min_mem)
            rows.append(
                (w, prob.graph.num_tasks, rep.replicated_fraction,
                 rep.distributed_fraction, rep.savings)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_depstructure",
        render_table(
            ["w", "tasks", "replicated share", "distributed share", "savings"],
            [[str(w), str(t), f"{100*r:.0f}%", f"{100*d:.0f}%", f"{100*s:.0f}%"]
             for w, t, r, d, s in rows],
            title=f"Ablation: dependence-structure memory share (Cholesky, P={p})",
        ),
    )
    # Distribution always saves a large fraction of the structure memory.
    assert all(s > 0.5 for *_xs, s in rows)
    # The share falls as granularity coarsens (toward the paper's band).
    repl = [r for _w, _t, r, _d, _s in rows]
    assert repl == sorted(repl, reverse=True)
    # Distributed share strictly below replicated everywhere.
    for _w, _t, r, d, _s in rows:
        assert d < r
