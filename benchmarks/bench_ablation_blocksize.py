"""Ablation — block size: the granularity knob of Corollary 2.

The block width ``w`` appears directly in the paper's space bounds
(``S1/p + w`` for both applications) and controls the task granularity /
overhead-sensitivity trade-off.  The sweep reports, for the Cholesky
workload: task count, DTS space bound, actual DTS MIN_MEM, and the
predicted parallel time — smaller blocks give finer parallelism and a
tighter memory bound but more per-task overhead exposure.
"""

from repro.core import analyze_memory, dts_order, gantt
from repro.core.dts import dts_space_bound
from repro.experiments.report import render_table
from repro.sparse.cholesky import build_cholesky
from repro.sparse.matrices import bcsstk15_like


def test_block_size_sweep(benchmark, ctx, record):
    a = bcsstk15_like(scale=0.08)
    p = 8
    flop_time = 1.0 / ctx.spec.flop_rate
    comm = ctx.spec.comm_model()

    def one(w, partition):
        prob = build_cholesky(a, block_size=w, flop_time=flop_time,
                              with_kernels=False, partition=partition)
        pl = prob.placement(p)
        asg = prob.assignment(pl)
        sched = dts_order(prob.graph, pl, asg, comm)
        prof = analyze_memory(sched)
        bound = dts_space_bound(prob.graph, pl, asg)
        label = f"{w}" if partition == "uniform" else f"sn<={w}"
        return (label, prob.graph.num_tasks, prof.min_mem, bound,
                gantt(sched, comm).makespan)

    def sweep():
        rows = [one(w, "uniform") for w in (6, 10, 16, 24)]
        rows.append(one(16, "supernodal"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_blocksize",
        render_table(
            ["w", "tasks", "DTS MIN_MEM", "Thm-2 bound", "predicted PT"],
            [[str(w), str(t), str(m), str(b), f"{pt*1e3:.2f} ms"]
             for w, t, m, b, pt in rows],
            title=f"Ablation: block size sweep incl. supernodal (Cholesky, DTS, P={p})",
        ),
    )
    rows = rows[:4]  # the monotonicity assertions below are for uniform
    # Theorem 2 holds at every granularity.
    for _w, _t, m, b, _pt in rows:
        assert m <= b
    # Finer blocks -> more tasks.
    tasks = [t for _w, t, _m, _b, _pt in rows]
    assert tasks == sorted(tasks, reverse=True)


def test_ordering_sweep(benchmark, ctx, record):
    """Fill-reducing ordering choice: MD vs RCM vs natural — fill, task
    count and memory all depend on it (minimum degree wins)."""
    from repro.sparse.symbolic import fill_nnz, symbolic_cholesky
    from repro.sparse.ordering import order_matrix

    a = bcsstk15_like(scale=0.08)

    def sweep():
        rows = []
        for method in ("md", "rcm", "natural"):
            am, _perm = order_matrix(a, method)
            cols, _ = symbolic_cholesky(am)
            rows.append((method, fill_nnz(cols)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_ordering",
        render_table(
            ["ordering", "nnz(L)"],
            [[m, str(f)] for m, f in rows],
            title="Ablation: fill-reducing ordering (bcsstk15-like)",
        ),
    )
    fills = dict(rows)
    assert fills["md"] <= fills["natural"]
