"""Shared fixtures for the benchmark harness.

Every ``bench_table*`` / ``bench_figure*`` file regenerates one table or
figure of the paper.  The rendered output is printed and also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
latest run.

The :class:`~repro.experiments.ExperimentContext` is session-scoped:
schedules and profiles are shared across benchmarks, so the benchmark
timings measure the incremental work of each experiment.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def record():
    """Persist a rendered experiment output under benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record
