"""Table 5 — average number of MAPs, RCP vs MPO (sparse Cholesky).

Paper shape: MPO never needs more MAPs than RCP at the same capacity
(e.g. ``4/3`` at P=2/75%), and is executable at capacities where RCP is
not (``inf/6.6`` style cells).
"""

import math

from repro.experiments import table5


def test_table5(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table5(ctx), rounds=1, iterations=1)
    record("table5", result.render())
    better_or_equal = 0
    strict = 0
    for (p, f), (rcp_maps, mpo_maps) in result.entries.items():
        if math.isinf(rcp_maps) and not math.isinf(mpo_maps):
            strict += 1  # MPO executable where RCP is not
            continue
        if math.isinf(mpo_maps):
            continue
        assert mpo_maps <= rcp_maps + 1e-9
        better_or_equal += 1
        if mpo_maps < rcp_maps - 1e-9:
            strict += 1
    assert better_or_equal > 0 and strict > 0
