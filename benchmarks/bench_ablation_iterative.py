"""Ablation — amortization of management overhead in iterative codes.

RAPID targets "irregular applications which involve iterative
computation and have invariant or slowly changed dependence structures"
(section 2): the address notifications of the first iteration stay valid
afterwards, so the steady-state iterations pay only the recycling costs.
This ablation reports the amortized per-iteration overhead versus the
iteration count for the Cholesky workload under a 75% memory budget.
"""

from repro.experiments.report import render_table
from repro.rapid.api import ParallelProgram


def test_iterative_amortization(benchmark, ctx, record):
    key, p = "chol15", 8
    sched = ctx.schedule(key, p, "mpo")
    prog = ParallelProgram(schedule=sched, spec=ctx.spec)
    capacity = int(prog.tot * 0.75)
    base = ctx.baseline_pt(key, p)

    def sweep():
        rows = []
        for iters in (1, 2, 5, 20, 100):
            it = prog.run_iterative(iters, capacity=capacity)
            rows.append((iters, (it.amortized_time - base) / base))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_iterative",
        render_table(
            ["iterations", "amortized PT increase"],
            [[str(n), f"{100*v:.1f}%"] for n, v in rows],
            title="Ablation: overhead amortization over iterations "
            "(Cholesky, MPO, P=8, 75% memory)",
        ),
    )
    incs = [v for _n, v in rows]
    assert incs == sorted(incs, reverse=True)  # amortizes monotonically
    assert incs[-1] < incs[0]


def test_nbody_iterative(benchmark, ctx, record):
    """The same effect on the N-body application (multi-version volatile
    traffic)."""
    from repro.nbody import build_nbody

    prob = build_nbody(k=6, steps=1, seed=2, flop_time=1.0 / ctx.spec.flop_rate,
                       with_kernels=False)
    pl = prob.placement(8)
    asg = prob.assignment(pl)
    from repro.core import mpo_order

    sched = mpo_order(prob.graph, pl, asg, ctx.spec.comm_model())
    prog = ParallelProgram(schedule=sched, spec=ctx.spec)

    def run():
        return prog.run_iterative(50, capacity=prog.min_mem)

    it = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_nbody_iterative",
        f"N-body step (k=6, P=8): first {it.first.parallel_time*1e3:.3f} ms, "
        f"steady {it.steady.parallel_time*1e3:.3f} ms, "
        f"amortized {it.amortized_time*1e3:.3f} ms over {it.iterations} steps",
    )
    assert it.steady.parallel_time <= it.first.parallel_time
