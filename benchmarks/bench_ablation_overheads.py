"""Ablation — sensitivity to memory-management overhead parameters.

The paper's absolute PT-increase numbers depend on the T3D runtime's
software costs, which the reproduction models as free parameters
(``MachineSpec``).  This ablation sweeps a scale factor over all
memory-management overheads and reports the PT increase of a fixed
configuration — quantifying exactly the sensitivity the calibration
notes warned is lost in a Python reproduction.
"""

from repro.experiments.report import render_table
from repro.machine.simulator import Simulator


def test_overhead_sensitivity(benchmark, ctx, record):
    key, p, frac = "chol15", 16, 0.75
    sched = ctx.schedule(key, p, "rcp")
    prof = ctx.profile(key, p, "rcp")
    tot = prof.tot
    capacity = int(tot * frac)
    base_pt = ctx.baseline_pt(key, p)

    def sweep():
        rows = []
        for factor in (0.0, 0.5, 1.0, 2.0, 4.0):
            spec = ctx.spec.scaled_overheads(factor)
            res = Simulator(sched, spec=spec, capacity=capacity, profile=prof).run()
            rows.append((factor, (res.parallel_time - base_pt) / base_pt))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_overheads",
        render_table(
            ["overhead scale", "PT increase"],
            [[f"{f:.1f}x", f"{100*v:.1f}%"] for f, v in rows],
            title=f"Ablation: overhead sensitivity (Cholesky, P={p}, {int(frac*100)}%)",
        ),
    )
    incs = [v for _f, v in rows]
    # Monotone in the overhead scale, and nonzero even at 0x (the
    # address-before-data handshake itself costs time).
    assert incs == sorted(incs)
    assert incs[-1] > incs[0]
