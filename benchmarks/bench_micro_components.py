"""Micro-benchmarks of the library's building blocks.

These measure real throughput (pytest-benchmark statistics are
meaningful here, unlike the single-shot table regenerations): ordering
heuristics, liveness analysis, MAP planning, the discrete-event
simulator and symbolic factorization.
"""

import pytest

from repro.core import (
    analyze_memory,
    cyclic_placement,
    dts_order,
    mpo_order,
    owner_compute_assignment,
    plan_maps,
    rcp_order,
)
from repro.graph.generators import layered_random
from repro.machine import UNIT_MACHINE, Simulator
from repro.sparse.matrices import perturbed_grid_spd
from repro.sparse.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def workload():
    g = layered_random(25, 40, density=0.15, seed=7)  # 1000 tasks
    pl = cyclic_placement(g, 8)
    asg = owner_compute_assignment(g, pl)
    return g, pl, asg


@pytest.mark.parametrize("order_fn", [rcp_order, mpo_order, dts_order])
def test_ordering_throughput(benchmark, workload, order_fn):
    g, pl, asg = workload
    s = benchmark(lambda: order_fn(g, pl, asg))
    assert s.graph.num_tasks == 1000


def test_liveness_throughput(benchmark, workload):
    g, pl, asg = workload
    sched = mpo_order(g, pl, asg)
    prof = benchmark(lambda: analyze_memory(sched))
    assert prof.min_mem > 0


def test_map_planning_throughput(benchmark, workload):
    g, pl, asg = workload
    sched = mpo_order(g, pl, asg)
    prof = analyze_memory(sched)
    plan = benchmark(lambda: plan_maps(sched, prof.min_mem, prof))
    assert plan.avg_maps >= 1.0


def test_simulator_throughput(benchmark, workload):
    g, pl, asg = workload
    sched = mpo_order(g, pl, asg)
    prof = analyze_memory(sched)

    def run():
        return Simulator(
            sched, spec=UNIT_MACHINE, capacity=prof.min_mem, profile=prof
        ).run()

    res = benchmark(run)
    assert res.parallel_time > 0


def test_symbolic_cholesky_throughput(benchmark):
    a = perturbed_grid_spd(22, seed=1)  # n = 484
    cols, _ = benchmark(lambda: symbolic_cholesky(a))
    assert len(cols) == 484
