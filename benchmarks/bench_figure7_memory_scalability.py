"""Figure 7 — memory scalability S1/S_p of RCP / MPO / DTS.

Paper shape: DTS tracks the perfect ``S1/p`` curve, MPO significantly
improves on RCP, RCP is not memory scalable — dramatically so for LU
(its curve stays nearly flat).
"""

from repro.experiments import run_figure7


def test_figure7_cholesky(benchmark, ctx, record):
    fig = benchmark.pedantic(
        lambda: run_figure7(ctx, "cholesky"), rounds=1, iterations=1
    )
    record("figure7_cholesky", fig.render())
    for i, p in enumerate(fig.procs):
        assert fig.series["RCP"][i] <= fig.series["MPO"][i] + 1e-9
        assert fig.series["DTS"][i] <= p + 1e-9
    # MPO meaningfully better than RCP at scale.
    assert fig.series["MPO"][-1] > 1.3 * fig.series["RCP"][-1]


def test_figure7_lu(benchmark, ctx, record):
    fig = benchmark.pedantic(lambda: run_figure7(ctx, "lu"), rounds=1, iterations=1)
    record("figure7_lu", fig.render())
    # RCP nearly flat for LU (paper's most dramatic curve).
    assert fig.series["RCP"][-1] < 0.3 * fig.procs[-1]
    # DTS close to MPO or better, both far above RCP.
    assert fig.series["DTS"][-1] >= fig.series["RCP"][-1]
    assert fig.series["MPO"][-1] > 2 * fig.series["RCP"][-1]
