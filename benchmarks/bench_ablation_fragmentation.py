"""Ablation — fragmentation of a real address-space allocator.

The paper's conclusion: "space freed from irregular dependence
structures usually contains many small pieces and is hard to be
re-utilized.  To address this fragmentation problem, it is necessary to
develop a special memory allocator."  This ablation replays the volatile
alloc/free sequence of a MAP plan against the first-fit
:class:`~repro.machine.memory.FreeListAllocator` and reports how much
extra headroom (over the object-exact ``MIN_MEM``) a contiguous heap
needs before every allocation succeeds.
"""

from repro.errors import MemoryError_
from repro.experiments.report import render_table
from repro.machine.memory import FreeListAllocator


def replay(plan, graph, proc: int, capacity: int) -> bool:
    """Replay a processor's MAP alloc/free sequence; False on failure."""
    perm = plan.profile.procs[proc].perm_bytes
    heap = FreeListAllocator(capacity)
    if perm:
        heap.alloc("<perm>", perm)
    try:
        for mp in plan.points[proc]:
            for o in mp.frees:
                heap.free(o)
            for o in mp.allocs:
                heap.alloc(o, graph.object(o).size)
    except MemoryError_:
        return False
    return True


def test_fragmentation_headroom(benchmark, ctx, record):
    from repro.core.maps import plan_maps

    key, p = "chol15", 8
    sched = ctx.schedule(key, p, "rcp")
    prof = ctx.profile(key, p, "rcp")
    capacity = int(prof.tot * 0.6)
    plan = plan_maps(sched, capacity, prof)

    def measure():
        rows = []
        for headroom in (1.0, 1.05, 1.1, 1.25, 1.5):
            ok = all(
                replay(plan, sched.graph, q, int(capacity * headroom))
                for q in range(p)
            )
            rows.append((headroom, ok))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_fragmentation",
        render_table(
            ["headroom", "first-fit heap succeeds"],
            [[f"{h:.2f}x", str(ok)] for h, ok in rows],
            title="Ablation: first-fit heap vs object-exact accounting "
            f"(Cholesky, P={p}, capacity=60% TOT)",
        ),
    )
    # With enough headroom the heap always succeeds.
    assert rows[-1][1]
