"""Table 2 — overhead of active memory management, sparse Cholesky.

Paper shape: PT increase grows with p and as memory shrinks (3.8-22% at
100%, up to ~65% at 40%); schedules become non-executable (``inf``) at
small p / small memory; #MAPs grow as memory shrinks and shrink as p
grows.
"""

import math

from repro.experiments import table2


def test_table2(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table2(ctx), rounds=1, iterations=1)
    record("table2", result.render())
    procs, fracs = result.procs, result.fractions
    # PT increase at 100% grows with p.
    full = [result.pt_increase[(p, 1.0)] for p in procs]
    assert all(x >= 0 for x in full)
    assert full[-1] > full[0]
    # For each p, overhead is monotone-ish as memory shrinks (among
    # executable cells).
    for p in procs:
        vals = [result.pt_increase[(p, f)] for f in fracs]
        ok = [v for v in vals if not math.isinf(v)]
        if len(ok) >= 2:
            assert ok[-1] >= ok[0] - 0.02
    # Executability improves with p: the last row has no inf entries.
    assert not any(math.isinf(result.pt_increase[(procs[-1], f)]) for f in fracs)
    # Some small-p cell must be non-executable (the paper's inf pattern).
    assert any(math.isinf(result.pt_increase[(procs[0], f)]) for f in fracs)
