"""Table 1 — per-processor memory usage over S1/p (original RAPID).

Paper values (Cray-T3D, BCSSTK15/24): 1.88, 3.19, 4.64, 5.72 for
p = 2, 4, 8, 16 — the ratio grows with p because each processor owns
fewer permanent objects while needing more volatile copies.
"""

from repro.experiments import table1


def test_table1(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table1(ctx), rounds=1, iterations=1)
    record("table1", result.render())
    # Shape assertions: ratio > 1 and strictly growing with p.
    procs = result.procs
    assert all(result.ratios[p] > 1.0 for p in procs)
    for a, b in zip(procs, procs[1:]):
        assert result.ratios[a] < result.ratios[b]
