"""Table 6 — parallel times: MPO vs plain DTS.

Paper shape: MPO outperforms DTS substantially (DTS ignores critical
paths across slices), the gap growing with p and larger for LU than
Cholesky; but DTS is executable at 25% capacities where MPO is not.
"""

from repro.experiments import table6


def _positive_mean(entries):
    vals = [v for v in entries.values() if isinstance(v, float)]
    return sum(vals) / len(vals) if vals else 0.0


def test_table6_cholesky(benchmark, ctx, record):
    result = benchmark.pedantic(
        lambda: table6(ctx, "cholesky"), rounds=1, iterations=1
    )
    record("table6_cholesky", result.render())
    assert _positive_mean(result.entries) > 0.03  # DTS slower on average
    # the gap grows with p (compare smallest vs largest executable rows)
    first = [v for (p, f), v in result.entries.items() if p == result.procs[0] and isinstance(v, float)]
    last = [v for (p, f), v in result.entries.items() if p == result.procs[-1] and isinstance(v, float)]
    if first and last:
        assert max(last) >= max(first)


def test_table6_lu(benchmark, ctx, record):
    result = benchmark.pedantic(lambda: table6(ctx, "lu"), rounds=1, iterations=1)
    record("table6_lu", result.render())
    assert _positive_mean(result.entries) > 0.03


def test_lu_gap_larger_than_cholesky(benchmark, ctx, record):
    """Paper: 'the performance difference between two algorithms for LU
    are bigger than the difference for Cholesky' (coarser tasks)."""

    def both():
        return (
            table6(ctx, "cholesky", procs=(8, 16), fractions=(0.75,)),
            table6(ctx, "lu", procs=(8, 16), fractions=(0.75,)),
        )

    chol, lu = benchmark.pedantic(both, rounds=1, iterations=1)
    assert _positive_mean(lu.entries) > _positive_mean(chol.entries)
