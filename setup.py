"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP-660 editable
installs (``pip install -e .`` with build isolation) cannot build. This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
perform a classic develop install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
